//! Feature encoding: turning specifications, candidate programs and
//! execution traces into the token sequences consumed by the neural fitness
//! model.
//!
//! Integers are clamped to a symmetric range and shifted into a dense token
//! vocabulary; a separator token marks the boundary between a program input
//! and its output. DSL functions are encoded by their zero-based index
//! (`Function::index()`), exactly one token per statement.

use netsyn_dsl::{Execution, Function, IoExample, IoSpec, Program, Value};
use serde::{Deserialize, Serialize};

/// Configuration of the token encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodingConfig {
    /// Integers are clamped to `[-max_abs_value, max_abs_value]`.
    pub max_abs_value: i64,
    /// Lists are truncated to at most this many tokens.
    pub max_list_tokens: usize,
}

impl EncodingConfig {
    /// Default configuration: values in `[-128, 128]`, lists up to 16 tokens.
    #[must_use]
    pub fn new() -> Self {
        EncodingConfig {
            max_abs_value: 128,
            max_list_tokens: 16,
        }
    }

    /// Size of the value-token vocabulary (all clamped integers plus the
    /// separator token).
    #[must_use]
    pub fn value_vocab_size(&self) -> usize {
        (2 * self.max_abs_value + 2) as usize
    }

    /// The separator token id.
    #[must_use]
    pub fn separator_token(&self) -> usize {
        (2 * self.max_abs_value + 1) as usize
    }

    /// Encodes a single integer as a token id.
    #[must_use]
    pub fn encode_int(&self, v: i64) -> usize {
        let clamped = v.clamp(-self.max_abs_value, self.max_abs_value);
        (clamped + self.max_abs_value) as usize
    }

    /// Encodes a DSL value as a token sequence (lists are truncated).
    #[must_use]
    pub fn encode_value(&self, value: &Value) -> Vec<usize> {
        value
            .to_tokens()
            .iter()
            .take(self.max_list_tokens)
            .map(|&v| self.encode_int(v))
            .collect()
    }

    /// Encodes an input-output example as `input tokens, SEP, output tokens`.
    #[must_use]
    pub fn encode_example(&self, example: &IoExample) -> Vec<usize> {
        let mut tokens = Vec::new();
        for input in &example.inputs {
            tokens.extend(self.encode_value(input));
            tokens.push(self.separator_token());
        }
        tokens.extend(self.encode_value(&example.output));
        tokens
    }
}

impl Default for EncodingConfig {
    fn default() -> Self {
        EncodingConfig::new()
    }
}

/// One encoded trace step: the statement's function index and the tokens of
/// the value it produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedStep {
    /// `Function::index()` of the statement (0..41).
    pub function: usize,
    /// Tokens of the statement's output value.
    pub value_tokens: Vec<usize>,
}

/// One encoded input-output example together with the candidate's execution
/// trace on that example's inputs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedExample {
    /// Tokens of the example (`input, SEP, output`).
    pub io_tokens: Vec<usize>,
    /// Per-statement trace of the candidate on this example's inputs. Empty
    /// when the model is used without a candidate (the FP head).
    pub steps: Vec<EncodedStep>,
}

/// A fully encoded model input: one entry per input-output example.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedSample {
    /// Per-example encodings.
    pub examples: Vec<EncodedExample>,
}

impl EncodedSample {
    /// Number of input-output examples in the sample.
    #[must_use]
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the sample has no examples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }
}

/// Encodes a specification together with a candidate program and its
/// execution traces, as consumed by the CF and LCS fitness networks.
///
/// The candidate is run on every example's inputs to obtain the traces; if it
/// cannot run (empty program) the trace is left empty.
#[must_use]
pub fn encode_candidate(
    config: &EncodingConfig,
    spec: &IoSpec,
    candidate: &Program,
) -> EncodedSample {
    let examples = spec
        .iter()
        .map(|example| {
            let steps = candidate
                .run(&example.inputs)
                .map(|execution| encode_trace(config, candidate, &execution))
                .unwrap_or_default();
            EncodedExample {
                io_tokens: config.encode_example(example),
                steps,
            }
        })
        .collect();
    EncodedSample { examples }
}

/// Encodes many candidates against the same specification, encoding the
/// specification's IO token sequences exactly once and sharing them across
/// all samples (the per-candidate path re-encodes the spec for every call).
///
/// Produces, for each candidate, exactly what
/// [`encode_candidate`] produces.
#[must_use]
pub fn encode_candidates(
    config: &EncodingConfig,
    spec: &IoSpec,
    candidates: &[Program],
) -> Vec<EncodedSample> {
    let io_tokens: Vec<Vec<usize>> = spec
        .iter()
        .map(|example| config.encode_example(example))
        .collect();
    candidates
        .iter()
        .map(|candidate| {
            let examples = spec
                .iter()
                .zip(io_tokens.iter())
                .map(|(example, tokens)| {
                    let steps = candidate
                        .run(&example.inputs)
                        .map(|execution| encode_trace(config, candidate, &execution))
                        .unwrap_or_default();
                    EncodedExample {
                        io_tokens: tokens.clone(),
                        steps,
                    }
                })
                .collect();
            EncodedSample { examples }
        })
        .collect()
}

/// Encodes a specification alone (no candidate, no trace), as consumed by the
/// FP (function-probability) network.
#[must_use]
pub fn encode_spec(config: &EncodingConfig, spec: &IoSpec) -> EncodedSample {
    let examples = spec
        .iter()
        .map(|example| EncodedExample {
            io_tokens: config.encode_example(example),
            steps: Vec::new(),
        })
        .collect();
    EncodedSample { examples }
}

fn encode_trace(
    config: &EncodingConfig,
    candidate: &Program,
    execution: &Execution,
) -> Vec<EncodedStep> {
    candidate
        .functions()
        .iter()
        .zip(execution.steps.iter())
        .map(|(func, value)| EncodedStep {
            function: func.index(),
            value_tokens: config.encode_value(value),
        })
        .collect()
}

/// The size of the function vocabulary (one token per DSL function).
#[must_use]
pub fn function_vocab_size() -> usize {
    Function::COUNT
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{IntPredicate, MapOp};

    fn config() -> EncodingConfig {
        EncodingConfig::new()
    }

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, 2, 3])],
            ],
        )
    }

    #[test]
    fn int_encoding_clamps_and_shifts() {
        let c = config();
        assert_eq!(c.encode_int(0), 128);
        assert_eq!(c.encode_int(-128), 0);
        assert_eq!(c.encode_int(128), 256);
        assert_eq!(c.encode_int(1_000_000), 256);
        assert_eq!(c.encode_int(-1_000_000), 0);
        assert_eq!(c.separator_token(), 257);
        assert_eq!(c.value_vocab_size(), 258);
        // Every encoded token fits the vocabulary.
        for v in [-200, -128, -1, 0, 1, 127, 128, 200] {
            assert!(c.encode_int(v) < c.value_vocab_size());
        }
    }

    #[test]
    fn value_encoding_truncates_long_lists() {
        let mut c = config();
        c.max_list_tokens = 4;
        let long = Value::List((0..20).collect());
        assert_eq!(c.encode_value(&long).len(), 4);
        assert_eq!(c.encode_value(&Value::Int(5)), vec![133]);
    }

    #[test]
    fn example_encoding_contains_separator() {
        let c = config();
        let example = IoExample::new(vec![Value::List(vec![1, 2])], Value::Int(3));
        let tokens = c.encode_example(&example);
        assert_eq!(tokens, vec![129, 130, c.separator_token(), 131]);
    }

    #[test]
    fn encode_candidate_produces_one_step_per_statement() {
        let c = config();
        let sample = encode_candidate(&c, &spec(), &target());
        assert_eq!(sample.len(), 2);
        assert!(!sample.is_empty());
        for example in &sample.examples {
            assert_eq!(example.steps.len(), 4);
            assert!(example
                .steps
                .iter()
                .all(|s| s.function < function_vocab_size()));
            assert!(!example.io_tokens.is_empty());
        }
        // The first step of the first example is FILTER(>0) and its trace
        // value is the filtered list [10, 3, 5, 2].
        let first = &sample.examples[0].steps[0];
        assert_eq!(first.function, Function::Filter(IntPredicate::Positive).index());
        assert_eq!(first.value_tokens, vec![138, 131, 133, 130]);
    }

    #[test]
    fn encode_candidates_matches_per_candidate_encoding() {
        let c = config();
        let candidates = [
            target(),
            Program::new(vec![Function::Head]),
            Program::default(),
        ];
        let batch = encode_candidates(&c, &spec(), &candidates);
        assert_eq!(batch.len(), candidates.len());
        for (candidate, sample) in candidates.iter().zip(batch.iter()) {
            assert_eq!(sample, &encode_candidate(&c, &spec(), candidate));
        }
        assert!(encode_candidates(&c, &spec(), &[]).is_empty());
    }

    #[test]
    fn encode_spec_has_no_steps() {
        let c = config();
        let sample = encode_spec(&c, &spec());
        assert_eq!(sample.len(), 2);
        assert!(sample.examples.iter().all(|e| e.steps.is_empty()));
    }

    #[test]
    fn empty_candidate_yields_empty_traces() {
        let c = config();
        let sample = encode_candidate(&c, &spec(), &Program::default());
        assert!(sample.examples.iter().all(|e| e.steps.is_empty()));
    }

    #[test]
    fn all_function_indices_fit_the_function_vocab() {
        assert_eq!(function_vocab_size(), 41);
        for f in Function::ALL {
            assert!(f.index() < function_vocab_size());
        }
    }
}
