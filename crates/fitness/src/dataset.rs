//! Training-corpus generation for the learned fitness functions.
//!
//! Following Section 5 of the paper, example target programs are generated at
//! random together with `m` input-output examples each; candidate programs
//! are generated so that every possible CF (or LCS) value `0..=L` is equally
//! represented, which balances the classifier's training labels.

use crate::metrics::{common_functions, longest_common_subsequence};
use netsyn_dsl::{DomainId, DslError, Function, Generator, GeneratorConfig, IoSpec, Program};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which label the candidate-generation process balances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BalanceMetric {
    /// Balance the common-functions value.
    CommonFunctions,
    /// Balance the longest-common-subsequence value.
    LongestCommonSubsequence,
}

/// One training example for the fitness networks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitnessSample {
    /// Input-output examples of the (hidden) target program.
    pub spec: IoSpec,
    /// The hidden target program the spec was generated from.
    pub target: Program,
    /// The candidate program whose fitness is being labelled.
    pub candidate: Program,
    /// Ground-truth number of common functions between candidate and target.
    pub cf: usize,
    /// Ground-truth longest common subsequence between candidate and target.
    pub lcs: usize,
    /// Per-function indicator of membership in the target (the FP label).
    pub fp_target: Vec<f32>,
}

/// Configuration of corpus generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Length of the target (and candidate) programs.
    pub program_length: usize,
    /// Number of distinct target programs to generate.
    pub num_target_programs: usize,
    /// Number of input-output examples per target (`m` in the paper, 5).
    pub examples_per_program: usize,
    /// How many candidates to generate per (target, label value) pair.
    pub candidates_per_value: usize,
    /// Random program / input generation parameters.
    pub generator: GeneratorConfig,
}

impl DatasetConfig {
    /// A small default corpus configuration for the given program length.
    #[must_use]
    pub fn for_length(program_length: usize) -> Self {
        DatasetConfig {
            program_length,
            num_target_programs: 200,
            examples_per_program: 5,
            candidates_per_value: 1,
            generator: GeneratorConfig::for_length(program_length),
        }
    }
}

/// The FP label for a list-domain target program: a 41-dimensional indicator
/// vector over [`DomainId::List`]'s vocabulary.
#[must_use]
pub fn fp_label(target: &Program) -> Vec<f32> {
    fp_label_for(DomainId::List, target)
}

/// The FP label over an explicit domain: one indicator per vocabulary entry,
/// indexed by the domain-local token index. Target operators outside the
/// domain's vocabulary are ignored.
#[must_use]
pub fn fp_label_for(domain: DomainId, target: &Program) -> Vec<f32> {
    let mut label = vec![0.0; domain.vocab_len()];
    for f in target.functions() {
        if let Some(i) = domain.token_index(*f) {
            label[i] = 1.0;
        }
    }
    label
}

/// Constructs a candidate of the same length as `target` with exactly `cf`
/// common functions (multiset intersection) with it.
///
/// # Panics
///
/// Panics if `cf > target.len()` or `target` is empty.
#[must_use]
pub fn candidate_with_cf<R: Rng + ?Sized>(target: &Program, cf: usize, rng: &mut R) -> Program {
    candidate_with_cf_in(DomainId::List, target, cf, rng)
}

/// [`candidate_with_cf`] over an explicit domain: replacement functions are
/// drawn from `domain`'s vocabulary.
///
/// # Panics
///
/// Panics if `cf > target.len()` or `target` is empty.
#[must_use]
pub fn candidate_with_cf_in<R: Rng + ?Sized>(
    domain: DomainId,
    target: &Program,
    cf: usize,
    rng: &mut R,
) -> Program {
    assert!(!target.is_empty(), "target must be non-empty");
    assert!(cf <= target.len(), "cf cannot exceed the target length");
    let length = target.len();
    let mut positions: Vec<usize> = (0..length).collect();
    positions.shuffle(rng);
    let mut functions: Vec<Function> = positions[..cf]
        .iter()
        .map(|&i| target.get(i).expect("index in range"))
        .collect();
    let outside = functions_outside(domain, target);
    for _ in cf..length {
        functions.push(*outside.choose(rng).expect("the vocabulary is non-empty"));
    }
    functions.shuffle(rng);
    Program::new(functions)
}

/// Constructs a candidate of the same length as `target` whose longest common
/// subsequence with it is exactly `lcs`.
///
/// # Panics
///
/// Panics if `lcs > target.len()` or `target` is empty.
#[must_use]
pub fn candidate_with_lcs<R: Rng + ?Sized>(target: &Program, lcs: usize, rng: &mut R) -> Program {
    candidate_with_lcs_in(DomainId::List, target, lcs, rng)
}

/// [`candidate_with_lcs`] over an explicit domain: filler functions are drawn
/// from `domain`'s vocabulary.
///
/// # Panics
///
/// Panics if `lcs > target.len()` or `target` is empty.
#[must_use]
pub fn candidate_with_lcs_in<R: Rng + ?Sized>(
    domain: DomainId,
    target: &Program,
    lcs: usize,
    rng: &mut R,
) -> Program {
    assert!(!target.is_empty(), "target must be non-empty");
    assert!(lcs <= target.len(), "lcs cannot exceed the target length");
    let length = target.len();
    // Pick the target positions forming the common subsequence, in order.
    let mut source_positions: Vec<usize> = (0..length).collect();
    source_positions.shuffle(rng);
    let mut chosen: Vec<usize> = source_positions[..lcs].to_vec();
    chosen.sort_unstable();
    // Pick where those functions land in the candidate, also in order.
    let mut destination_positions: Vec<usize> = (0..length).collect();
    destination_positions.shuffle(rng);
    let mut slots: Vec<usize> = destination_positions[..lcs].to_vec();
    slots.sort_unstable();

    let outside = functions_outside(domain, target);
    let mut functions: Vec<Function> = (0..length)
        .map(|_| *outside.choose(rng).expect("the vocabulary is non-empty"))
        .collect();
    for (slot, src) in slots.iter().zip(chosen.iter()) {
        functions[*slot] = target.get(*src).expect("index in range");
    }
    Program::new(functions)
}

fn functions_outside(domain: DomainId, target: &Program) -> Vec<Function> {
    let vocab = domain.vocab();
    let outside: Vec<Function> = vocab
        .iter()
        .copied()
        .filter(|f| !target.functions().contains(f))
        .collect();
    if outside.is_empty() {
        // Degenerate (target uses the whole vocabulary); fall back to it.
        vocab.to_vec()
    } else {
        outside
    }
}

/// Generates a labelled corpus for the CF or LCS classifier, balanced so that
/// every label value `0..=L` appears equally often.
///
/// # Errors
///
/// Returns [`DslError::GenerationExhausted`] if target-program generation
/// fails under the configured constraints.
pub fn generate_dataset<R: Rng + ?Sized>(
    config: &DatasetConfig,
    balance: BalanceMetric,
    rng: &mut R,
) -> Result<Vec<FitnessSample>, DslError> {
    let domain = config.generator.domain;
    let generator = Generator::new(config.generator.clone());
    let mut samples = Vec::new();
    for _ in 0..config.num_target_programs {
        let task = generator.task(config.examples_per_program, rng)?;
        let label = fp_label_for(domain, &task.target);
        for value in 0..=config.program_length {
            for _ in 0..config.candidates_per_value {
                let candidate = match balance {
                    BalanceMetric::CommonFunctions => {
                        candidate_with_cf_in(domain, &task.target, value, rng)
                    }
                    BalanceMetric::LongestCommonSubsequence => {
                        candidate_with_lcs_in(domain, &task.target, value, rng)
                    }
                };
                samples.push(FitnessSample {
                    spec: task.spec.clone(),
                    cf: common_functions(&candidate, &task.target),
                    lcs: longest_common_subsequence(&candidate, &task.target),
                    fp_target: label.clone(),
                    target: task.target.clone(),
                    candidate,
                });
            }
        }
    }
    samples.shuffle(rng);
    Ok(samples)
}

/// Generates a corpus for the FP model: one sample per target program, with a
/// uniformly random candidate (the FP model ignores the candidate).
///
/// # Errors
///
/// Returns [`DslError::GenerationExhausted`] if target-program generation
/// fails under the configured constraints.
pub fn generate_fp_dataset<R: Rng + ?Sized>(
    config: &DatasetConfig,
    rng: &mut R,
) -> Result<Vec<FitnessSample>, DslError> {
    let domain = config.generator.domain;
    let generator = Generator::new(config.generator.clone());
    let mut samples = Vec::with_capacity(config.num_target_programs);
    for _ in 0..config.num_target_programs {
        let task = generator.task(config.examples_per_program, rng)?;
        let candidate = generator.random_program(rng);
        samples.push(FitnessSample {
            fp_target: fp_label_for(domain, &task.target),
            cf: common_functions(&candidate, &task.target),
            lcs: longest_common_subsequence(&candidate, &task.target),
            spec: task.spec.clone(),
            target: task.target,
            candidate,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{IntPredicate, MapOp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
            Function::Sum,
        ])
    }

    #[test]
    fn candidate_with_cf_hits_every_value() {
        let t = target();
        let mut r = rng(1);
        for cf in 0..=t.len() {
            for _ in 0..10 {
                let c = candidate_with_cf(&t, cf, &mut r);
                assert_eq!(c.len(), t.len());
                assert_eq!(
                    common_functions(&c, &t),
                    cf,
                    "candidate {c} should share exactly {cf} functions with {t}"
                );
            }
        }
    }

    #[test]
    fn candidate_with_lcs_hits_every_value() {
        let t = target();
        let mut r = rng(2);
        for lcs in 0..=t.len() {
            for _ in 0..10 {
                let c = candidate_with_lcs(&t, lcs, &mut r);
                assert_eq!(c.len(), t.len());
                assert_eq!(
                    longest_common_subsequence(&c, &t),
                    lcs,
                    "candidate {c} should have LCS {lcs} with {t}"
                );
            }
        }
    }

    #[test]
    fn fp_label_marks_target_functions() {
        let label = fp_label(&target());
        assert_eq!(label.len(), 41);
        assert_eq!(label.iter().filter(|&&x| x == 1.0).count(), 5);
        assert_eq!(label[Function::Sort.index()], 1.0);
        assert_eq!(label[Function::Head.index()], 0.0);
    }

    #[test]
    fn generated_dataset_is_balanced_and_consistent() {
        let mut config = DatasetConfig::for_length(5);
        config.num_target_programs = 6;
        let mut r = rng(3);
        let samples = generate_dataset(&config, BalanceMetric::CommonFunctions, &mut r).unwrap();
        assert_eq!(samples.len(), 6 * 6);
        // Labels are consistent with the stored programs.
        for s in &samples {
            assert_eq!(common_functions(&s.candidate, &s.target), s.cf);
            assert_eq!(longest_common_subsequence(&s.candidate, &s.target), s.lcs);
            assert_eq!(s.spec.len(), 5);
            assert!(s.spec.is_satisfied_by(&s.target));
            assert_eq!(s.fp_target, fp_label(&s.target));
        }
        // Every CF value 0..=5 appears the same number of times.
        for value in 0..=5usize {
            let count = samples.iter().filter(|s| s.cf == value).count();
            assert_eq!(count, 6, "cf value {value} appears {count} times");
        }
    }

    #[test]
    fn lcs_balanced_dataset_covers_all_values() {
        let mut config = DatasetConfig::for_length(5);
        config.num_target_programs = 4;
        let mut r = rng(4);
        let samples =
            generate_dataset(&config, BalanceMetric::LongestCommonSubsequence, &mut r).unwrap();
        for value in 0..=5usize {
            assert_eq!(samples.iter().filter(|s| s.lcs == value).count(), 4);
        }
    }

    #[test]
    fn fp_dataset_has_one_sample_per_target() {
        let mut config = DatasetConfig::for_length(5);
        config.num_target_programs = 8;
        let mut r = rng(5);
        let samples = generate_fp_dataset(&config, &mut r).unwrap();
        assert_eq!(samples.len(), 8);
        for s in &samples {
            assert_eq!(s.fp_target.iter().filter(|&&x| x == 1.0).count(), {
                // Distinct functions of the target (duplicates collapse).
                let mut set = std::collections::HashSet::new();
                s.target.functions().iter().for_each(|f| {
                    set.insert(*f);
                });
                set.len()
            });
        }
    }
}
