//! # netsyn-lint
//!
//! A workspace-local static-analysis pass over the determinism-critical
//! core. It is deliberately `syn`-free: a line/token-level scanner over
//! comment- and string-stripped source, cheap enough to run as a CI gate
//! (`cargo run -p netsyn-lint`) on every push.
//!
//! ## Rule reference
//!
//! | Rule | What it rejects | Why |
//! |------|-----------------|-----|
//! | `partial-cmp-unwrap` | `partial_cmp(..)` chained into `.unwrap()` / `.expect(..)` | A NaN score turns a ranking into a panic deep inside the GA loop. Use a total order (`total_cmp`) or handle the `None` arm; annotate call sites that structurally exclude NaN. |
//! | `thread-spawn` | `std::thread::spawn` / `std::thread::Builder` outside the pool and flusher modules | Ad-hoc threads bypass the worker pool's deterministic partitioning and the sleeper protocol's accounting. |
//! | `hashmap-iter-serialized` | Iterating a `HashMap`/`HashSet` in the same statement that writes serialized output | Hash iteration order is randomized per process; feeding it to a writer makes artifacts non-reproducible. Collect and sort first. |
//! | `wall-clock` | `Instant::now()` / `SystemTime::now()` outside benchmarking crates | Wall-clock reads in search or scoring paths break run-to-run reproducibility. |
//! | `unsafe-safety-comment` | An `unsafe {` block or `unsafe impl` with no `// SAFETY:` comment immediately above (or trailing) | Every unsafe site must state the invariant that makes it sound. |
//!
//! ## Escape hatch
//!
//! A finding can be suppressed with an annotation on the offending line or
//! the line directly above:
//!
//! ```text
//! // netsyn-lint: allow(wall-clock) — wall-time reporting only, never feeds search decisions
//! ```
//!
//! The reason after the dash is mandatory; an `allow(..)` without one is
//! itself reported (`allow-missing-reason`). Module-level allowlists for
//! the pool/flusher (`thread-spawn`) and the benchmarking crates
//! (`wall-clock`) live in this file next to the rules they scope.
//!
//! ## Scope
//!
//! The scanner walks every `*.rs` under `crates/**/src` and the top-level
//! `src/`, skipping `#[cfg(test)]` regions (tests may time things and spawn
//! threads at will). It strips comments, string literals and char literals
//! before matching, so rule names or patterns inside strings never
//! self-trigger.

use std::fmt;
use std::path::{Path, PathBuf};

/// One finding: a rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (usable in `allow(..)`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Rule identifiers, in reporting order.
pub const RULES: &[&str] = &[
    "partial-cmp-unwrap",
    "thread-spawn",
    "hashmap-iter-serialized",
    "wall-clock",
    "unsafe-safety-comment",
];

/// `thread-spawn` allowlist: the worker pool itself and the durable-cache
/// background flusher are the two sanctioned thread owners (the loom shim
/// spawns model threads by design).
const THREAD_SPAWN_ALLOW: &[&str] = &[
    "crates/compat/rayon/src/",
    "crates/compat/loom/src/",
    "crates/fitness/src/persist.rs",
];

/// `wall-clock` allowlist: benchmarking and the compat shims that exist to
/// wrap time (criterion's timer, rand's entropy fallback).
const WALL_CLOCK_ALLOW: &[&str] = &[
    "crates/compat/criterion/src/",
    "crates/compat/rand/src/",
    "crates/bench/src/",
];

/// A source line split into executable code and comment text, with string
/// and char literal contents blanked out of the code.
#[derive(Debug, Default, Clone)]
struct StrippedLine {
    code: String,
    comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Splits source into per-line (code, comment) with literals blanked.
/// Handles nested block comments, raw strings, char literals vs.
/// lifetimes, and escape sequences.
fn strip(source: &str) -> Vec<StrippedLine> {
    let mut lines: Vec<StrippedLine> = vec![StrippedLine::default()];
    let mut state = State::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    macro_rules! cur {
        () => {
            lines.last_mut().expect("at least one line")
        };
    }
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(StrippedLine::default());
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur!().code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == 'r' && matches!(next, Some('"') | Some('#')) {
                    // Possible raw string r"..." / r#"..."#; count hashes.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        cur!().code.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                    } else {
                        cur!().code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal or lifetime: `'\n'` and `'a'` are
                    // literals; `'a` followed by non-quote is a lifetime.
                    if next == Some('\\') {
                        cur!().code.push('\'');
                        state = State::Char;
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        cur!().code.push_str("''");
                        i += 3;
                    } else {
                        cur!().code.push('\'');
                        i += 1;
                    }
                } else {
                    cur!().code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur!().comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur!().comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    cur!().code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        cur!().code.push('"');
                        state = State::Code;
                        i = j;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    cur!().code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    lines
}

/// Marks lines inside `#[cfg(test)]` items (the attribute itself and the
/// whole braced item that follows), by brace-depth tracking on stripped
/// code.
fn test_region_mask(lines: &[StrippedLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut region_floor: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let in_region = region_floor.is_some();
        if !in_region && (code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test")) {
            pending_attr = true;
        }
        if in_region || pending_attr {
            mask[idx] = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if pending_attr {
                        region_floor = Some(depth);
                        pending_attr = false;
                        mask[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(floor) = region_floor {
                        if depth <= floor {
                            region_floor = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    mask
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Whether `needle` occurs in `hay` bounded by non-identifier characters.
fn contains_token(hay: &str, needle: &str) -> bool {
    find_token(hay, needle).is_some()
}

fn find_token(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + needle.len().max(1);
    }
    None
}

/// Identifiers bound to `HashMap`/`HashSet` values in this file: `let`
/// bindings, struct fields and typed parameters.
fn hash_container_idents(lines: &[StrippedLine]) -> Vec<String> {
    let mut idents = Vec::new();
    for line in lines {
        let code = &line.code;
        if !(code.contains("HashMap") || code.contains("HashSet")) {
            continue;
        }
        // `let [mut] name ... = HashMap::...` / `let name: HashMap<...>`
        if let Some(let_pos) = find_token(code, "let") {
            let rest = code[let_pos + 3..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty()
                && (code.contains("= HashMap::")
                    || code.contains("= HashSet::")
                    || code.contains(": HashMap<")
                    || code.contains(": HashSet<"))
            {
                idents.push(name);
                continue;
            }
        }
        // `name: HashMap<...>` fields / params.
        for marker in [": HashMap<", ": HashSet<"] {
            if let Some(pos) = code.find(marker) {
                let head = &code[..pos];
                let name: String = head
                    .chars()
                    .rev()
                    .take_while(|&c| is_ident_char(c))
                    .collect::<String>()
                    .chars()
                    .rev()
                    .collect();
                if !name.is_empty() {
                    idents.push(name);
                }
            }
        }
    }
    idents.sort();
    idents.dedup();
    idents
}

/// Joins `lines[start..]` into one statement-ish window: stops after the
/// first line past `start` containing `;`, or after `max` lines.
fn statement_window(lines: &[StrippedLine], start: usize, max: usize) -> String {
    let mut joined = String::new();
    for (offset, line) in lines[start..].iter().take(max).enumerate() {
        joined.push_str(&line.code);
        joined.push(' ');
        if offset > 0 && line.code.contains(';') {
            break;
        }
    }
    joined
}

/// Tokens that turn a hash-iteration statement into serialized output.
const SINK_TOKENS: &[&str] = &[
    "write!",
    "writeln!",
    "serialize",
    "to_writer",
    "push_str",
    "format!",
    "to_string",
];

/// Parsed `netsyn-lint: allow(..)` annotation.
struct Allow {
    rule: String,
    has_reason: bool,
}

fn parse_allow(comment: &str) -> Option<Allow> {
    let start = comment.find("netsyn-lint:")?;
    let rest = comment[start + "netsyn-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '-', ' ']);
    Some(Allow {
        rule,
        has_reason: !tail.trim().is_empty(),
    })
}

fn path_in(path: &str, allowlist: &[&str]) -> bool {
    let normalized = path.replace('\\', "/");
    allowlist.iter().any(|prefix| normalized.contains(prefix))
}

/// Lints one file's source text. `path` is used for diagnostics and the
/// per-rule module allowlists, so pass it workspace-relative.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let lines = strip(source);
    let mask = test_region_mask(&lines);
    let hash_idents = hash_container_idents(&lines);
    let mut raw: Vec<Diagnostic> = Vec::new();
    let diag = |line: usize, rule: &'static str, message: String| Diagnostic {
        path: path.to_string(),
        line: line + 1,
        rule,
        message,
    };

    for (idx, line) in lines.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        let code = &line.code;

        // partial-cmp-unwrap -------------------------------------------------
        if let Some(pos) = code.find("partial_cmp") {
            let window = statement_window(&lines, idx, 4);
            let after = &window[pos..];
            if after.contains(".unwrap") || after.contains(".expect") {
                raw.push(diag(
                    idx,
                    "partial-cmp-unwrap",
                    "partial_cmp chained into unwrap/expect panics on NaN; use total_cmp \
                     or handle the None arm"
                        .to_string(),
                ));
            }
        }

        // thread-spawn -------------------------------------------------------
        if !path_in(path, THREAD_SPAWN_ALLOW) {
            for pattern in ["thread::spawn", "thread::Builder"] {
                if let Some(pos) = code.find(pattern) {
                    let before = &code[..pos];
                    if !before.ends_with("loom::") {
                        raw.push(diag(
                            idx,
                            "thread-spawn",
                            format!(
                                "{pattern} outside the worker pool / flusher modules bypasses \
                                 deterministic work partitioning"
                            ),
                        ));
                        break;
                    }
                }
            }
        }

        // hashmap-iter-serialized --------------------------------------------
        let mut iterates_hash = false;
        for ident in &hash_idents {
            if let Some(pos) = find_token(code, ident) {
                let after = &code[pos + ident.len()..];
                let iter_call = [".iter()", ".keys()", ".values()", ".drain(", ".into_iter()"]
                    .iter()
                    .any(|call| after.starts_with(call));
                let for_in = contains_token(code, "for")
                    && find_token(code, "in").map(|p| p < pos).unwrap_or(false);
                if iter_call || for_in {
                    iterates_hash = true;
                    break;
                }
            }
        }
        if iterates_hash {
            let window = statement_window(&lines, idx, 6);
            if SINK_TOKENS.iter().any(|sink| window.contains(sink)) {
                raw.push(diag(
                    idx,
                    "hashmap-iter-serialized",
                    "HashMap/HashSet iteration order is randomized; sort before feeding \
                     serialized output"
                        .to_string(),
                ));
            }
        }

        // wall-clock ---------------------------------------------------------
        if !path_in(path, WALL_CLOCK_ALLOW)
            && (code.contains("Instant::now") || code.contains("SystemTime::now"))
        {
            raw.push(diag(
                idx,
                "wall-clock",
                "wall-clock reads break run-to-run reproducibility in deterministic paths"
                    .to_string(),
            ));
        }

        // unsafe-safety-comment ----------------------------------------------
        if let Some(pos) = find_token(code, "unsafe") {
            let after = code[pos + "unsafe".len()..].trim_start();
            let is_block_or_impl = after.starts_with('{') || after.starts_with("impl");
            if is_block_or_impl && !has_safety_comment(&lines, idx) {
                raw.push(diag(
                    idx,
                    "unsafe-safety-comment",
                    "unsafe block/impl without a preceding // SAFETY: comment stating the \
                     soundness invariant"
                        .to_string(),
                ));
            }
        }
    }

    // Apply allow annotations (same line or directly above).
    let mut out = Vec::new();
    for d in raw {
        let idx = d.line - 1;
        let mut allowed = false;
        let mut missing_reason = false;
        for look in [idx, idx.saturating_sub(1)] {
            if let Some(allow) = lines.get(look).and_then(|l| parse_allow(&l.comment)) {
                if allow.rule == d.rule {
                    if allow.has_reason {
                        allowed = true;
                    } else {
                        missing_reason = true;
                    }
                }
            }
        }
        if allowed {
            continue;
        }
        if missing_reason {
            out.push(Diagnostic {
                path: d.path.clone(),
                line: d.line,
                rule: "allow-missing-reason",
                message: format!(
                    "allow({}) annotation must carry a reason after a dash",
                    d.rule
                ),
            });
            continue;
        }
        out.push(d);
    }
    out
}

/// True when the contiguous comment/attribute block above `idx` (or the
/// trailing comment on the line itself) contains `SAFETY:`.
fn has_safety_comment(lines: &[StrippedLine], idx: usize) -> bool {
    if lines[idx].comment.contains("SAFETY:") {
        return true;
    }
    let mut look = idx;
    while look > 0 {
        look -= 1;
        let line = &lines[look];
        if line.comment.contains("SAFETY:") {
            return true;
        }
        let code = line.code.trim();
        let is_pass_through = code.is_empty() || code.starts_with("#[");
        if !is_pass_through {
            return false;
        }
    }
    false
}

/// Recursively collects `*.rs` files under `dir`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// The default scan set: every `crates/**/src/**/*.rs` plus the top-level
/// `src/`, relative to `root`.
pub fn default_scan_set(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut all = Vec::new();
    walk(&root.join("crates"), &mut all);
    files.extend(
        all.into_iter()
            .filter(|p| p.to_string_lossy().replace('\\', "/").contains("/src/")),
    );
    walk(&root.join("src"), &mut files);
    files.sort();
    files
}

/// Lints every file in `files`; paths are reported relative to `root`.
pub fn run_files(root: &Path, files: &[PathBuf]) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    for file in files {
        let Ok(source) = std::fs::read_to_string(file) else {
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        diagnostics.extend(lint_source(&rel, &source));
    }
    diagnostics
}

/// CLI entry point: lints the workspace (or explicit paths passed as
/// arguments) and returns the process exit code — 0 when clean, 1 when
/// any diagnostic fired.
pub fn run_cli() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let files = if args.is_empty() {
        default_scan_set(&root)
    } else {
        let mut files = Vec::new();
        for arg in &args {
            let path = PathBuf::from(arg);
            if path.is_dir() {
                walk(&path, &mut files);
            } else {
                files.push(path);
            }
        }
        files
    };
    let diagnostics = run_files(&root, &files);
    for d in &diagnostics {
        eprintln!("{d}");
    }
    if diagnostics.is_empty() {
        eprintln!("netsyn-lint: {} files clean", files.len());
        0
    } else {
        eprintln!("netsyn-lint: {} finding(s)", diagnostics.len());
        1
    }
}
