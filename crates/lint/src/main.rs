fn main() {
    std::process::exit(netsyn_lint::run_cli());
}
