//! Fixture tests for every `netsyn-lint` rule: each rule must fire on its
//! violating fixture, stay quiet on the clean variant, respect the
//! `allow(..)` annotation and the module allowlists, and skip
//! `#[cfg(test)]` regions and string/comment occurrences.

use netsyn_lint::{lint_source, Diagnostic};

fn rules_fired(path: &str, source: &str) -> Vec<&'static str> {
    lint_source(path, source)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

// -- partial-cmp-unwrap ----------------------------------------------------

#[test]
fn partial_cmp_unwrap_fires() {
    let diags = lint_source(
        "crates/x/src/lib.rs",
        "fn f(a: f64, b: f64) {\n    let _ = a.partial_cmp(&b).unwrap();\n}\n",
    );
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "partial-cmp-unwrap");
    assert_eq!(diags[0].line, 2);
}

#[test]
fn partial_cmp_expect_fires_across_wrapped_lines() {
    let src = "fn f(a: f64, b: f64) {\n    let _ = a\n        .partial_cmp(&b)\n        .expect(\"no NaN\");\n}\n";
    assert_eq!(
        rules_fired("crates/x/src/lib.rs", src),
        ["partial-cmp-unwrap"]
    );
}

#[test]
fn partial_cmp_with_handled_none_is_clean() {
    let src = "fn f(a: f64, b: f64) {\n    let _ = a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal);\n}\n";
    // unwrap_or is still an `.unwrap` prefix — the rule intentionally
    // flags it; the genuinely clean spelling is total_cmp or match.
    assert_eq!(
        rules_fired("crates/x/src/lib.rs", src),
        ["partial-cmp-unwrap"]
    );
    let clean = "fn f(a: f64, b: f64) {\n    let _ = a.total_cmp(&b);\n    let _ = match a.partial_cmp(&b) { Some(o) => o, None => std::cmp::Ordering::Equal };\n}\n";
    assert!(rules_fired("crates/x/src/lib.rs", clean).is_empty());
}

#[test]
fn partial_cmp_allow_with_reason_suppresses() {
    let src = "fn f(a: f64, b: f64) {\n    // netsyn-lint: allow(partial-cmp-unwrap) — NaN filtered above\n    let _ = a.partial_cmp(&b).unwrap();\n}\n";
    assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn allow_without_reason_is_reported() {
    let src = "fn f(a: f64, b: f64) {\n    // netsyn-lint: allow(partial-cmp-unwrap)\n    let _ = a.partial_cmp(&b).unwrap();\n}\n";
    let diags = lint_source("crates/x/src/lib.rs", src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "allow-missing-reason");
}

#[test]
fn allow_for_a_different_rule_does_not_suppress() {
    let src = "fn f(a: f64, b: f64) {\n    // netsyn-lint: allow(wall-clock) — wrong rule\n    let _ = a.partial_cmp(&b).unwrap();\n}\n";
    assert_eq!(
        rules_fired("crates/x/src/lib.rs", src),
        ["partial-cmp-unwrap"]
    );
}

// -- thread-spawn ----------------------------------------------------------

#[test]
fn thread_spawn_fires_outside_allowlist() {
    let src = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
    assert_eq!(
        rules_fired("crates/ga/src/engine.rs", src),
        ["thread-spawn"]
    );
    let builder = "fn f() {\n    let _ = std::thread::Builder::new();\n}\n";
    assert_eq!(
        rules_fired("crates/ga/src/engine.rs", builder),
        ["thread-spawn"]
    );
}

#[test]
fn thread_spawn_allowlisted_modules_are_clean() {
    let src = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
    assert!(rules_fired("crates/compat/rayon/src/lib.rs", src).is_empty());
    assert!(rules_fired("crates/fitness/src/persist.rs", src).is_empty());
    assert!(rules_fired("crates/compat/loom/src/thread.rs", src).is_empty());
}

#[test]
fn loom_thread_spawn_is_not_std_spawn() {
    let src = "fn f() {\n    loom::thread::spawn(|| {});\n}\n";
    assert!(rules_fired("crates/ga/src/engine.rs", src).is_empty());
}

// -- hashmap-iter-serialized -----------------------------------------------

#[test]
fn hashmap_iteration_feeding_writer_fires() {
    let src = "use std::collections::HashMap;\nfn f(out: &mut String) {\n    let scores: HashMap<String, f64> = HashMap::new();\n    for (k, v) in scores.iter() {\n        out.push_str(&format!(\"{k}={v}\"));\n    }\n}\n";
    assert_eq!(
        rules_fired("crates/x/src/lib.rs", src),
        ["hashmap-iter-serialized"]
    );
}

#[test]
fn hashmap_keys_into_writeln_fires() {
    let src = "use std::collections::HashMap;\nstruct S { index: HashMap<u64, u64> }\nimpl S {\n    fn dump(&self, w: &mut dyn std::io::Write) {\n        for k in self.index.keys() {\n            writeln!(w, \"{k}\").unwrap();\n        }\n    }\n}\n";
    assert_eq!(
        rules_fired("crates/x/src/lib.rs", src),
        ["hashmap-iter-serialized"]
    );
}

#[test]
fn sorted_collection_then_write_is_clean() {
    let src = "use std::collections::HashMap;\nfn f(out: &mut String) {\n    let scores: HashMap<String, f64> = HashMap::new();\n    let mut rows: Vec<_> = scores.iter().collect();\n    rows.sort();\n    for (k, v) in rows {\n        out.push_str(&format!(\"{k}={v}\"));\n    }\n}\n";
    assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn hashmap_iteration_without_sink_is_clean() {
    let src = "use std::collections::HashMap;\nfn f() -> usize {\n    let scores: HashMap<String, f64> = HashMap::new();\n    scores.values().count()\n}\n";
    assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
}

// -- wall-clock ------------------------------------------------------------

#[test]
fn wall_clock_fires_outside_bench_crates() {
    let src = "fn f() {\n    let _ = std::time::Instant::now();\n}\n";
    assert_eq!(rules_fired("crates/ga/src/engine.rs", src), ["wall-clock"]);
    let sys = "fn f() {\n    let _ = std::time::SystemTime::now();\n}\n";
    assert_eq!(rules_fired("crates/dsl/src/interp.rs", sys), ["wall-clock"]);
}

#[test]
fn wall_clock_allowlisted_crates_are_clean() {
    let src = "fn f() {\n    let _ = std::time::Instant::now();\n}\n";
    assert!(rules_fired("crates/compat/criterion/src/lib.rs", src).is_empty());
    assert!(rules_fired("crates/compat/rand/src/lib.rs", src).is_empty());
    assert!(rules_fired("crates/bench/src/main.rs", src).is_empty());
}

// -- unsafe-safety-comment -------------------------------------------------

#[test]
fn unsafe_block_without_safety_comment_fires() {
    let src = "fn f(p: *mut u8) {\n    unsafe { *p = 0 };\n}\n";
    assert_eq!(
        rules_fired("crates/x/src/lib.rs", src),
        ["unsafe-safety-comment"]
    );
}

#[test]
fn unsafe_impl_without_safety_comment_fires() {
    let src = "struct T(*mut u8);\nunsafe impl Send for T {}\n";
    assert_eq!(
        rules_fired("crates/x/src/lib.rs", src),
        ["unsafe-safety-comment"]
    );
}

#[test]
fn safety_comment_above_satisfies_the_rule() {
    let src = "fn f(p: *mut u8) {\n    // SAFETY: caller guarantees p is valid and exclusive.\n    unsafe { *p = 0 };\n}\n";
    assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn safety_comment_across_attributes_and_long_blocks_is_found() {
    let src = "// SAFETY: the target_feature contract is upheld because the\n// dispatcher verified avx2 support at runtime before calling.\n#[cfg(target_arch = \"x86_64\")]\n#[target_feature(enable = \"avx2\")]\nunsafe fn g() {}\nfn f() {\n    // SAFETY: g's contract was checked above.\n    unsafe { g() };\n}\n";
    assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn unrelated_code_between_comment_and_unsafe_breaks_the_link() {
    let src = "fn f(p: *mut u8) {\n    // SAFETY: stale comment for something else.\n    let q = p;\n    unsafe { *q = 0 };\n}\n";
    assert_eq!(
        rules_fired("crates/x/src/lib.rs", src),
        ["unsafe-safety-comment"]
    );
}

#[test]
fn unsafe_fn_declaration_alone_is_not_flagged() {
    // Declaring an unsafe contract is not using one; callers are where the
    // obligation lands (and `unsafe_op_in_unsafe_fn` covers bodies).
    let src = "unsafe fn g(p: *mut u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(
        rules_fired("crates/x/src/lib.rs", src),
        ["unsafe-safety-comment"],
        "the body block still needs its own SAFETY comment"
    );
    let decl_only = "pub unsafe fn g();\n";
    assert!(rules_fired("crates/x/src/lib.rs", decl_only).is_empty());
}

// -- scanner hygiene -------------------------------------------------------

#[test]
fn cfg_test_regions_are_skipped() {
    let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = std::time::Instant::now();\n        std::thread::spawn(|| {});\n    }\n}\n";
    assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn code_after_a_cfg_test_region_is_still_scanned() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod() {\n    let _ = std::time::Instant::now();\n}\n";
    assert_eq!(rules_fired("crates/x/src/lib.rs", src), ["wall-clock"]);
}

#[test]
fn strings_and_comments_do_not_trigger_rules() {
    let src = "fn f() {\n    // std::thread::spawn in a comment, Instant::now too\n    let _ = \"std::thread::spawn and Instant::now and partial_cmp().unwrap()\";\n    let _ = r#\"SystemTime::now()\"#;\n}\n";
    assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn char_literals_and_lifetimes_do_not_derail_stripping() {
    let src = "fn f<'a>(s: &'a str) -> char {\n    let q = '\"';\n    let _ = s;\n    let _ = std::time::Instant::now();\n    q\n}\n";
    assert_eq!(rules_fired("crates/x/src/lib.rs", src), ["wall-clock"]);
}

#[test]
fn diagnostics_render_with_path_line_and_rule() {
    let d = Diagnostic {
        path: "crates/x/src/lib.rs".into(),
        line: 7,
        rule: "wall-clock",
        message: "msg".into(),
    };
    assert_eq!(d.to_string(), "crates/x/src/lib.rs:7: [wall-clock] msg");
}

#[test]
fn workspace_scan_is_clean() {
    // The CI gate: the real tree must produce zero findings. Walk up from
    // the crate dir to the workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let files = netsyn_lint::default_scan_set(root);
    assert!(
        files.len() > 50,
        "scan set unexpectedly small: {}",
        files.len()
    );
    let diags = netsyn_lint::run_files(root, &files);
    assert!(
        diags.is_empty(),
        "workspace must be lint-clean:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
