//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the workspace's
//! offline serde shim.
//!
//! The macros are written directly against `proc_macro` token trees (the
//! build environment has no `syn`/`quote`), so they support exactly the
//! shapes this workspace derives on: non-generic named-field structs, unit
//! structs, tuple structs, and enums whose variants are unit, tuple or
//! struct-like. Serialized form mirrors serde's externally tagged defaults:
//! structs become maps, unit variants become strings, payload variants
//! become single-entry maps.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Input {
    Struct {
        name: String,
        fields: StructFields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum StructFields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: StructFields,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => emit_serialize(&parsed)
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => emit_deserialize(&parsed)
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    skip_attributes_and_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos)?;
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("expected struct or enum, found `{other}`")),
    };
    let name = expect_ident(&tokens, &mut pos)?;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the offline serde derive does not support generic type `{name}`"
        ));
    }

    if is_enum {
        let body = expect_group(&tokens, &mut pos, Delimiter::Brace)?;
        Ok(Input::Enum {
            name,
            variants: parse_variants(&body)?,
        })
    } else {
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => StructFields::Named(
                parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>())?,
            ),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                StructFields::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => StructFields::Unit,
            other => return Err(format!("unsupported struct body: {other:?}")),
        };
        Ok(Input::Struct { name, fields })
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

fn expect_group(
    tokens: &[TokenTree],
    pos: &mut usize,
    delimiter: Delimiter,
) -> Result<Vec<TokenTree>, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == delimiter => {
            *pos += 1;
            Ok(g.stream().into_iter().collect())
        }
        other => Err(format!("expected {delimiter:?} group, found {other:?}")),
    }
}

/// Advances past a type (or any token soup) until a comma at angle-depth
/// zero, leaving `pos` on the comma or at the end.
fn skip_until_top_level_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        skip_attributes_and_visibility(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(tokens, &mut pos)?;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_until_top_level_comma(tokens, &mut pos);
        pos += 1; // consume the comma (or run off the end)
        fields.push(name);
    }
    Ok(fields)
}

/// Counts the comma-separated fields of a tuple struct/variant body.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    let mut pos = 0usize;
    while pos < tokens.len() {
        skip_until_top_level_comma(tokens, &mut pos);
        count += 1;
        pos += 1;
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        skip_attributes_and_visibility(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(tokens, &mut pos)?;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                StructFields::Tuple(count_tuple_fields(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                StructFields::Named(parse_named_fields(&body)?)
            }
            _ => StructFields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        skip_until_top_level_comma(tokens, &mut pos);
        pos += 1;
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn emit_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = match fields {
                StructFields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_content(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
                }
                StructFields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
                StructFields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                StructFields::Unit => "::serde::Content::Map(::std::vec::Vec::new())".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        StructFields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Content::Str(::std::string::String::from({vname:?})),"
                        ),
                        StructFields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Content::Map(vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Serialize::to_content(f0))]),"
                        ),
                        StructFields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Content::Map(vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Content::Seq(vec![{}]))]),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        StructFields::Named(field_names) => {
                            let binders = field_names.join(", ");
                            let entries: Vec<String> = field_names
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Content::Map(vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Content::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn emit_deserialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = match fields {
                StructFields::Named(names) => {
                    let fields_init: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_content(\
                                 ::serde::field(map, {f:?}, {name:?})?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let map = ::serde::expect_map(content, {name:?})?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        fields_init.join(", ")
                    )
                }
                StructFields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_content(content)?))"
                ),
                StructFields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = ::serde::expect_seq_len(content, {n}, {name:?})?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                StructFields::Unit => {
                    format!("::std::result::Result::Ok({name})")
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, StructFields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        StructFields::Unit => None,
                        StructFields::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_content(payload)?)),"
                        )),
                        StructFields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                 let items = ::serde::expect_seq_len(\
                                     payload, {n}, {name:?})?;\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        StructFields::Named(field_names) => {
                            let fields_init: Vec<String> = field_names
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_content(\
                                         ::serde::field(map, {f:?}, {name:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                 let map = ::serde::expect_map(payload, {name:?})?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }},",
                                fields_init.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match content {{\n\
                             ::serde::Content::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(\
                                     ::serde::DeError::unknown_variant(other, {name:?})),\n\
                             }},\n\
                             _ => {{\n\
                                 let (tag, payload) = \
                                     ::serde::expect_externally_tagged(content, {name:?})?;\n\
                                 let _ = payload;\n\
                                 match tag {{\n\
                                     {}\n\
                                     other => ::std::result::Result::Err(\
                                         ::serde::DeError::unknown_variant(other, {name:?})),\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    }
}
