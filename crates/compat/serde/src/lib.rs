//! Offline replacement for the [`serde`](https://crates.io/crates/serde)
//! crate, sized for this workspace.
//!
//! Instead of serde's visitor-based zero-copy data model, values serialize
//! into an owned [`Content`] tree (think "JSON value"), which `serde_json`
//! then renders to or parses from text. The [`Serialize`] and [`Deserialize`]
//! traits and their derive macros keep their upstream names so the rest of
//! the workspace compiles unchanged:
//!
//! ```ignore
//! #[derive(Serialize, Deserialize)]
//! struct Config { width: usize }
//! ```
//!
//! Supported shapes (all this workspace uses): named-field structs, unit
//! structs, newtype/tuple structs, and enums with unit, tuple and
//! struct-like variants. Generic types are not supported by the derive.

pub use serde_derive::{Deserialize, Serialize};

/// An owned, format-independent value tree (the serialization data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also used for `Option::None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered string-keyed map (field order is preserved).
    Map(Vec<(String, Content)>),
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Error for a value of an unexpected shape.
    #[must_use]
    pub fn expected(what: &str, context: &str, got: &Content) -> Self {
        DeError(format!("expected {what} for {context}, got {}", got.kind()))
    }

    /// Error for an unrecognized enum variant name.
    #[must_use]
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for enum {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl Content {
    /// A short name of the value's shape, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::Int(_) | Content::UInt(_) => "integer",
            Content::Float(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// A value that can be converted into a [`Content`] tree.
pub trait Serialize {
    /// Converts the value into its content-tree representation.
    fn to_content(&self) -> Content;
}

/// A value that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs the value, reporting shape mismatches as [`DeError`].
    ///
    /// # Errors
    ///
    /// Returns an error when `content` does not have the expected shape.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-generated code.
// ---------------------------------------------------------------------------

/// Expects `content` to be a map, in the context of type `ty`.
///
/// # Errors
///
/// Returns an error when `content` is not a map.
pub fn expect_map<'c>(content: &'c Content, ty: &str) -> Result<&'c [(String, Content)], DeError> {
    match content {
        Content::Map(entries) => Ok(entries),
        other => Err(DeError::expected("a map", ty, other)),
    }
}

/// Expects `content` to be a sequence of exactly `len` elements.
///
/// # Errors
///
/// Returns an error when `content` is not a sequence of that length.
pub fn expect_seq_len<'c>(
    content: &'c Content,
    len: usize,
    ty: &str,
) -> Result<&'c [Content], DeError> {
    match content {
        Content::Seq(items) if items.len() == len => Ok(items),
        Content::Seq(items) => Err(DeError::new(format!(
            "expected {len} elements for {ty}, got {}",
            items.len()
        ))),
        other => Err(DeError::expected("a sequence", ty, other)),
    }
}

/// Looks up field `name` in a struct's map entries.
///
/// # Errors
///
/// Returns an error when the field is absent.
pub fn field<'c>(
    entries: &'c [(String, Content)],
    name: &str,
    ty: &str,
) -> Result<&'c Content, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}` for {ty}")))
}

/// Destructures an externally tagged enum value (`{"Variant": payload}`).
///
/// # Errors
///
/// Returns an error when `content` is not a single-entry map.
pub fn expect_externally_tagged<'c>(
    content: &'c Content,
    ty: &str,
) -> Result<(&'c str, &'c Content), DeError> {
    match content {
        Content::Map(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
        other => Err(DeError::expected("a single-variant map", ty, other)),
    }
}

// ---------------------------------------------------------------------------
// Implementations for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Int(i64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let ty = stringify!($t);
                match *content {
                    Content::Int(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {ty}"))),
                    Content::UInt(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {ty}"))),
                    ref other => Err(DeError::expected("an integer", ty, other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Content::Int(i),
                    Err(_) => Content::UInt(v),
                }
            }
        }

        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let ty = stringify!($t);
                match *content {
                    Content::Int(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {ty}"))),
                    Content::UInt(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {ty}"))),
                    ref other => Err(DeError::expected("an integer", ty, other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn to_content(&self) -> Content {
        Content::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        i64::from_content(content)
            .and_then(|v| isize::try_from(v).map_err(|_| DeError::new("isize out of range")))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("a bool", "bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match *content {
            Content::Float(v) => Ok(v),
            Content::Int(v) => Ok(v as f64),
            Content::UInt(v) => Ok(v as f64),
            Content::Null => Ok(f64::NAN),
            ref other => Err(DeError::expected("a number", "f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("a string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("a one-character string", "char", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("a sequence", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = expect_seq_len(content, 2, "tuple")?;
        Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = expect_seq_len(content, 3, "tuple")?;
        Ok((
            A::from_content(&items[0])?,
            B::from_content(&items[1])?,
            C::from_content(&items[2])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_content(&42i32.to_content()).unwrap(), 42);
        assert_eq!(
            u64::from_content(&Content::UInt(u64::MAX)).unwrap(),
            u64::MAX
        );
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(f32::from_content(&1.5f32.to_content()).unwrap(), 1.5);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()).unwrap(), v);
        let opt: Option<i64> = Some(-1);
        assert_eq!(Option::<i64>::from_content(&opt.to_content()).unwrap(), opt);
        let none: Option<i64> = None;
        assert_eq!(
            Option::<i64>::from_content(&none.to_content()).unwrap(),
            none
        );
        let pair = (1u8, "x".to_string());
        assert_eq!(
            <(u8, String)>::from_content(&pair.to_content()).unwrap(),
            pair
        );
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(bool::from_content(&Content::Int(1)).is_err());
        assert!(u8::from_content(&Content::Int(300)).is_err());
        assert!(expect_seq_len(&Content::Seq(vec![]), 2, "t").is_err());
        assert!(field(&[], "missing", "T").is_err());
    }
}
