//! Offline replacement for the subset of
//! [`criterion`](https://crates.io/crates/criterion) this workspace uses.
//!
//! Each benchmark is auto-calibrated (batch size grows until one batch takes
//! at least [`TARGET_BATCH_NANOS`]), then timed over `sample_size` batches.
//! Results print one line per benchmark:
//!
//! ```text
//! bench: group/name ... mean 123456 ns/iter (min 120000 ns/iter, 20 samples x 8 iters)
//! ```
//!
//! The format is stable so scripts can scrape it (the repo's
//! `BENCH_*.json` records are produced that way). There are no HTML
//! reports, statistical regressions, or command-line filters.

use std::hint;
use std::time::Instant;

/// Minimum wall-clock time one measured batch should take.
pub const TARGET_BATCH_NANOS: u128 = 5_000_000;

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies; re-exported from `std::hint`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Creates a driver with the default sample count (20).
    #[must_use]
    pub fn new() -> Self {
        Criterion { sample_size: 20 }
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name.as_ref(), self.sample_size.max(10), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let qualified = format!("{}/{}", self.name, name.as_ref());
        run_benchmark(&qualified, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
#[derive(Debug)]
pub struct Bencher {
    /// Iterations the routine must run this call.
    iters: u64,
    /// Measured wall time for those iterations, in nanoseconds.
    elapsed_nanos: u128,
}

impl Bencher {
    /// Measures `routine`, running it as many times as the calibrated batch
    /// requires.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed_nanos = start.elapsed().as_nanos();
    }
}

fn measure<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> u128 {
    let mut bencher = Bencher {
        iters,
        elapsed_nanos: 0,
    };
    f(&mut bencher);
    bencher.elapsed_nanos
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    // Calibrate: grow the batch until it takes TARGET_BATCH_NANOS.
    let mut iters: u64 = 1;
    loop {
        let nanos = measure(f, iters);
        if nanos >= TARGET_BATCH_NANOS || iters >= 1 << 20 {
            break;
        }
        // Aim directly for the target based on the observed rate.
        let per_iter = (nanos / u128::from(iters)).max(1);
        let wanted = (TARGET_BATCH_NANOS / per_iter + 1) as u64;
        iters = wanted.clamp(iters * 2, iters * 16).min(1 << 20);
    }

    let samples: Vec<u128> = (0..sample_size).map(|_| measure(f, iters)).collect();
    let per_iter: Vec<u128> = samples.iter().map(|&s| s / u128::from(iters)).collect();
    let mean = per_iter.iter().sum::<u128>() / per_iter.len() as u128;
    let min = *per_iter.iter().min().expect("at least one sample");
    println!(
        "bench: {name} ... mean {mean} ns/iter (min {min} ns/iter, {sample_size} samples x {iters} iters)"
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_elapsed_time() {
        let mut criterion = Criterion::new();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(2);
        let mut total = 0u64;
        group.bench_function("accumulate", |b| {
            b.iter(|| {
                total = total.wrapping_add(1);
                total
            });
        });
        group.finish();
        assert!(total > 0);
    }

    #[test]
    fn black_box_passes_values_through() {
        assert_eq!(black_box(7), 7);
    }
}
