//! Offline replacement for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, providing [`ChaCha8Rng`] on top of the workspace's `rand` shim.
//!
//! The generator runs a genuine ChaCha quarter-round core with 8 rounds over
//! a 16-word state (RFC 7539 layout) and streams the keystream words out as
//! random values. Output is fully deterministic for a fixed seed and
//! statistically strong, but the exact value stream is *not* guaranteed to
//! match upstream `rand_chacha` (the workspace never relies on cross-crate
//! stream equality, only on per-seed determinism).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state used to generate each block.
    state: [u32; 16],
    /// The current 16-word keystream block.
    block: [u32; 16],
    /// Next unread word index in `block` (16 = block exhausted).
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16 (counter + nonce) start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_is_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn output_looks_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        // 32_000 bits, expect ~16_000 set.
        assert!((15_000..17_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let _ = rng.next_u32();
        let mut fork = rng.clone();
        for _ in 0..40 {
            assert_eq!(rng.next_u32(), fork.next_u32());
        }
    }
}
