//! Offline replacement for [`serde_json`](https://crates.io/crates/serde_json):
//! renders the shim's [`serde::Content`] tree to JSON text and parses JSON
//! text back.
//!
//! Covers the workspace's usage — [`to_string`] and [`from_str`] — with
//! exact round-tripping of `f32`/`f64` (Rust's shortest-round-trip `Display`)
//! and of 64-bit integers. Non-finite floats serialize as `null` and
//! deserialize as `NaN`, mirroring "no non-finite numbers in JSON".

use serde::{Content, DeError, Deserialize, Serialize};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(err: DeError) -> Self {
        Error(err.0)
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the shim's data model; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or on a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let content = parser.parse_value()?;
    parser.skip_whitespace();
    if !parser.is_at_end() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.offset
        )));
    }
    T::from_content(&content).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Int(v) => {
            out.push_str(&v.to_string());
        }
        Content::UInt(v) => {
            out.push_str(&v.to_string());
        }
        Content::Float(v) => write_float(*v, out),
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_content(value, out);
            }
            out.push('}');
        }
    }
}

fn write_float(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let text = v.to_string();
    out.push_str(&text);
    // Keep floats recognizably floating point so integers stay integers.
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'s> {
    bytes: &'s [u8],
    offset: usize,
}

impl<'s> Parser<'s> {
    fn new(s: &'s str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            offset: 0,
        }
    }

    fn is_at_end(&self) -> bool {
        self.offset >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.offset).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.offset += 1;
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at offset {}", self.offset))
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.offset += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.offset..].starts_with(literal.as_bytes()) {
            self.offset += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.offset += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.offset += 1,
                Some(b']') => {
                    self.offset += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.offset += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.offset += 1,
                Some(b'}') => {
                    self.offset += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.offset += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.offset += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.parse_unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.offset += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.offset..];
                    let text =
                        std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.offset += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (plus a surrogate pair if needed);
    /// called with `peek() == Some(b'u')`.
    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        self.offset += 1; // consume 'u'
        let first = self.parse_hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a low surrogate must follow.
            if self.peek() == Some(b'\\') {
                self.offset += 1;
                if self.peek() == Some(b'u') {
                    self.offset += 1;
                    let second = self.parse_hex4()?;
                    if (0xDC00..0xE000).contains(&second) {
                        let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                        return char::from_u32(combined)
                            .ok_or_else(|| self.error("invalid surrogate pair"));
                    }
                }
            }
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.error("invalid hex digit")),
            };
            value = value * 16 + digit;
            self.offset += 1;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.offset;
        if self.peek() == Some(b'-') {
            self.offset += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.offset += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.offset += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.offset += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.offset += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.offset += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.offset += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.offset])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Content::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &v in &[0.1f32, -1.5, 9.87654, f32::MIN_POSITIVE, 1e30, -0.0] {
            let json = to_string(&v).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "f32 {v} via {json}");
        }
        for &v in &[0.1f64, 1.0 / 3.0, f64::MAX, 5e-324] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "f64 {v} via {json}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn extreme_integers_round_trip() {
        for &v in &[i64::MIN, -1, 0, i64::MAX] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<i64>(&json).unwrap(), v);
        }
        let json = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), u64::MAX);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![vec![1i64, 2], vec![], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<i64>>>(&json).unwrap(), v);
        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
    }

    #[test]
    fn whitespace_and_unicode_are_parsed() {
        let v: Vec<i64> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let s: String = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "é😀");
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<i64>("").is_err());
        assert!(from_str::<i64>("12 34").is_err());
        assert!(from_str::<Vec<i64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<bool>("troo").is_err());
    }
}
