//! Loom model suite for the pool's sleeper protocol.
//!
//! Invariant checked: **no lost wakeup** — a worker that parks after work
//! was made pending is always woken, because `park_unless` re-checks the
//! pending counter under the sleeper lock before waiting, and producers
//! bump `pending` *before* notifying. Each positive test asserts the full
//! schedule space was explored (`report.complete`); each seeded-bug test
//! re-creates the protocol *without* the load-bearing step and asserts the
//! model checker catches the resulting deadlock.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p rayon --test
//! sleeper_model --release`. Bounds: preemption bound 2 (the default),
//! which is exhaustive for these 2–3 thread protocols.
#![cfg(loom)]

use loom::model::Builder;
use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::{Condvar, Mutex};
use rayon::sleep::Sleepers;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Runs `f` under the model checker expecting a failure; returns the
/// panic message so callers can assert on what the checker reported.
fn catches(f: impl Fn() + Send + Sync + 'static) -> String {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Builder::new().check(f);
    }));
    let payload = result.expect_err("model checker should have found a failure");
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}

/// The real protocol: producer publishes work (`add_pending`) then wakes;
/// consumer loops re-checking pending inside `park_unless`. Every
/// interleaving must terminate with the consumer observing the work.
#[test]
fn no_lost_wakeup_between_push_and_park() {
    let report = Builder::new().check(|| {
        let sleepers = Arc::new(Sleepers::new());
        let producer = {
            let sleepers = Arc::clone(&sleepers);
            loom::thread::spawn(move || {
                // Production code calls add_pending under the queue lock;
                // ordering relative to the sleeper lock is what the model
                // explores, so the bare call is the honest shape here.
                sleepers.add_pending(1);
                sleepers.wake(1);
            })
        };
        // Consumer: park until work is visible, then take it.
        loop {
            if sleepers.pending() > 0 {
                sleepers.take_one();
                break;
            }
            sleepers.park_unless(|| false);
        }
        producer.join().unwrap();
        assert_eq!(sleepers.pending(), 0);
    });
    assert!(report.complete, "schedule space must be fully explored");
    assert!(report.iterations > 1, "protocol must actually interleave");
}

/// Scope completion: the helping thread parks with a `done` predicate and
/// the last worker flips the flag then calls `wake_all_if_any`. No
/// interleaving may strand the helper.
#[test]
fn scope_completion_wakeup_is_not_lost() {
    let report = Builder::new().check(|| {
        let sleepers = Arc::new(Sleepers::new());
        let done = Arc::new(AtomicBool::new(false));
        let worker = {
            let sleepers = Arc::clone(&sleepers);
            let done = Arc::clone(&done);
            loom::thread::spawn(move || {
                done.store(true, Ordering::SeqCst);
                sleepers.wake_all_if_any();
            })
        };
        while !done.load(Ordering::SeqCst) {
            let done = Arc::clone(&done);
            sleepers.park_unless(move || done.load(Ordering::SeqCst));
        }
        worker.join().unwrap();
    });
    assert!(report.complete, "schedule space must be fully explored");
}

/// Seeded bug: a sleeper that checks for work *before* taking the sleeper
/// lock and then waits unconditionally. The wakeup can land in the window
/// between the check and the wait, and is lost — the model checker must
/// report the deadlock.
#[test]
fn finds_lost_wakeup_when_park_skips_the_recheck() {
    let message = catches(|| {
        let sleepers = Arc::new(Mutex::new(0usize));
        let wakeup = Arc::new(Condvar::new());
        let pending = Arc::new(AtomicBool::new(false));
        let producer = {
            let pending = Arc::clone(&pending);
            let sleepers = Arc::clone(&sleepers);
            let wakeup = Arc::clone(&wakeup);
            loom::thread::spawn(move || {
                pending.store(true, Ordering::SeqCst);
                let asleep = sleepers.lock().unwrap();
                if *asleep > 0 {
                    wakeup.notify_one();
                }
            })
        };
        // BUG (seeded): the pending check happens outside the sleeper
        // lock. `Sleepers::park_unless` re-checks under the lock exactly
        // to close this window.
        if !pending.load(Ordering::SeqCst) {
            let mut asleep = sleepers.lock().unwrap();
            *asleep += 1;
            asleep = wakeup.wait(asleep).unwrap();
            *asleep -= 1;
        }
        producer.join().unwrap();
    });
    assert!(
        message.contains("deadlock"),
        "expected a deadlock report, got: {message}"
    );
}

/// Seeded bug: producer wakes *before* publishing pending. A consumer that
/// wakes, sees no work, and parks again then sleeps forever.
#[test]
fn finds_lost_wakeup_when_wake_precedes_pending() {
    let message = catches(|| {
        let sleepers = Arc::new(Sleepers::new());
        let producer = {
            let sleepers = Arc::clone(&sleepers);
            loom::thread::spawn(move || {
                // BUG (seeded): wake first, publish after. The consumer's
                // re-check under the sleeper lock can run in between and
                // see pending == 0.
                sleepers.wake(1);
                sleepers.add_pending(1);
            })
        };
        loop {
            if sleepers.pending() > 0 {
                sleepers.take_one();
                break;
            }
            sleepers.park_unless(|| false);
        }
        producer.join().unwrap();
    });
    assert!(
        message.contains("deadlock"),
        "expected a deadlock report, got: {message}"
    );
}
