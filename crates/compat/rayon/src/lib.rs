//! Offline replacement for the subset of [`rayon`](https://crates.io/crates/rayon)
//! this workspace uses.
//!
//! Parallelism is real: a lazily started, process-wide pool of
//! `available_parallelism` worker threads executes every parallel call, so
//! hot loops (the batched NN kernels call in here once per layer per time
//! step) pay only a queue round-trip rather than thread spawns. There is no
//! work stealing; each call splits its input into contiguous spans, one per
//! worker, and blocks until all spans finish. Nested parallel calls from
//! inside a worker run inline, which keeps the fixed-size pool
//! deadlock-free. Small inputs (fewer items than [`MIN_ITEMS_PER_THREAD`]
//! per would-be worker) skip the pool entirely.
//!
//! Supported surface: `par_iter().map(..).collect()`, `par_iter().for_each`,
//! `par_iter_mut().filter(..).for_each`, `par_chunks_mut(..).enumerate()
//! .for_each`, and [`join`].

use std::thread;

/// Below this many items per would-be worker, parallel calls run inline.
pub const MIN_ITEMS_PER_THREAD: usize = 2;

/// Number of worker threads a parallel call may use.
#[must_use]
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn worker_count(items: usize) -> usize {
    if items < 2 * MIN_ITEMS_PER_THREAD {
        return 1;
    }
    current_num_threads()
        .min(items / MIN_ITEMS_PER_THREAD)
        .max(1)
}

/// Splits `0..len` into `workers` near-equal contiguous spans.
fn spans(len: usize, workers: usize) -> Vec<(usize, usize)> {
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

mod pool {
    //! The shared worker pool behind every parallel call.

    use std::cell::Cell;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

    type Job = Box<dyn FnOnce() + Send + 'static>;

    struct Pool {
        sender: mpsc::Sender<Job>,
    }

    static POOL: OnceLock<Pool> = OnceLock::new();

    thread_local! {
        /// Set inside pool workers so nested parallel calls run inline
        /// instead of deadlocking the fixed-size pool.
        static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
    }

    fn pool() -> &'static Pool {
        POOL.get_or_init(|| {
            let (sender, receiver) = mpsc::channel::<Job>();
            let receiver = Arc::new(Mutex::new(receiver));
            for worker in 0..super::current_num_threads() {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{worker}"))
                    .spawn(move || {
                        IS_POOL_WORKER.with(|flag| flag.set(true));
                        loop {
                            let job = {
                                let guard = receiver.lock().expect("pool receiver lock");
                                guard.recv()
                            };
                            match job {
                                Ok(job) => job(),
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn rayon shim worker");
            }
            Pool { sender }
        })
    }

    /// Runs every task, using the pool when called from outside it, and
    /// returns once all tasks have finished.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked (the panic does not kill pool workers).
    pub fn run_scoped<'scope, F>(tasks: Vec<F>)
    where
        F: FnOnce() + Send + 'scope,
    {
        if tasks.len() <= 1 || IS_POOL_WORKER.with(Cell::get) {
            for task in tasks {
                task();
            }
            return;
        }
        let remaining = Arc::new((Mutex::new(tasks.len()), Condvar::new()));
        let panicked = Arc::new(AtomicBool::new(false));
        for task in tasks {
            let remaining = Arc::clone(&remaining);
            let panicked = Arc::clone(&panicked);
            let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    panicked.store(true, Ordering::SeqCst);
                }
                let (count, condvar) = &*remaining;
                let mut left = count.lock().expect("latch lock");
                *left -= 1;
                if *left == 0 {
                    condvar.notify_all();
                }
            });
            // SAFETY: this function blocks below until every queued job has
            // run, so all borrows captured by the job ('scope) strictly
            // outlive its execution; widening the lifetime to 'static never
            // lets a job observe a dangling reference.
            let job: Job = unsafe { std::mem::transmute(job) };
            pool().sender.send(job).expect("rayon shim pool is alive");
        }
        let (count, condvar) = &*remaining;
        let mut left = count.lock().expect("latch lock");
        while *left > 0 {
            left = condvar.wait(left).expect("latch wait");
        }
        drop(left);
        assert!(
            !panicked.load(Ordering::SeqCst),
            "a rayon shim task panicked"
        );
    }
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = {
        let rb_slot = &mut rb;
        let mut b = Some(b);
        let mut a = Some(a);
        let mut ra_slot = None;
        {
            let ra_ref = &mut ra_slot;
            let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
                Box::new(move || *ra_ref = Some((a.take().expect("a runs once"))())),
                Box::new(move || *rb_slot = Some((b.take().expect("b runs once"))())),
            ];
            pool::run_scoped(tasks);
        }
        ra_slot.expect("task a completed")
    };
    (ra, rb.expect("task b completed"))
}

/// The glob-importable API surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over the slice's elements.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// A parallel iterator over the slice's elements, mutably.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;

    /// A parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { items: self }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over `&T` items.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f`.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Applies `f` to every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        self.map(f).run();
    }
}

/// The result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    fn run<R>(self) -> Vec<R>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        let items = self.items;
        let f = &self.f;
        let workers = worker_count(items.len());
        if workers == 1 {
            return items.iter().map(f).collect();
        }
        let mut parts: Vec<Vec<R>> = (0..workers).map(|_| Vec::new()).collect();
        let tasks: Vec<_> = parts
            .iter_mut()
            .zip(spans(items.len(), workers))
            .map(|(part, (lo, hi))| move || *part = items[lo..hi].iter().map(f).collect())
            .collect();
        pool::run_scoped(tasks);
        parts.into_iter().flatten().collect()
    }

    /// Collects the mapped elements, preserving input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        self.run().into_iter().collect()
    }

    /// Applies the mapped closure for its side effects.
    pub fn for_each<R>(self)
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        let _ = self.run();
    }
}

/// Parallel iterator over `&mut T` items.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Keeps only elements matching `predicate`.
    pub fn filter<P>(self, predicate: P) -> ParFilterMut<'a, T, P>
    where
        P: Fn(&&mut T) -> bool + Sync,
    {
        ParFilterMut {
            items: self.items,
            predicate,
        }
    }

    /// Applies `f` to every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        self.filter(|_| true).for_each(f);
    }
}

/// The result of [`ParIterMut::filter`].
pub struct ParFilterMut<'a, T, P> {
    items: &'a mut [T],
    predicate: P,
}

impl<'a, T: Send, P> ParFilterMut<'a, T, P>
where
    P: Fn(&&mut T) -> bool + Sync,
{
    /// Applies `f` to every element matching the predicate.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let predicate = &self.predicate;
        let f = &f;
        let len = self.items.len();
        let workers = worker_count(len);
        if workers == 1 {
            for item in self.items.iter_mut() {
                if predicate(&item) {
                    f(item);
                }
            }
            return;
        }
        let mut rest = self.items;
        let mut tasks = Vec::with_capacity(workers);
        for (lo, hi) in spans(len, workers) {
            let (span, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            tasks.push(move || {
                for item in span.iter_mut() {
                    if predicate(&item) {
                        f(item);
                    }
                }
            });
        }
        pool::run_scoped(tasks);
    }
}

/// Parallel iterator over mutable chunks; see
/// [`ParallelSliceMut::par_chunks_mut`].
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    #[must_use]
    pub fn enumerate(self) -> ParEnumeratedChunksMut<'a, T> {
        ParEnumeratedChunksMut {
            chunks: self.chunks,
        }
    }

    /// Applies `f` to every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// The result of [`ParChunksMut::enumerate`].
pub struct ParEnumeratedChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParEnumeratedChunksMut<'a, T> {
    /// Applies `f` to every `(index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let f = &f;
        let chunk_count = self.chunks.len();
        // Chunks are already caller-coarsened units of work (callers size
        // them to one span per worker), so don't re-apply the per-item
        // minimum — that would halve the worker count or serialize small
        // chunk counts entirely.
        let workers = current_num_threads().min(chunk_count).max(1);
        if workers == 1 {
            for (i, chunk) in self.chunks.into_iter().enumerate() {
                f((i, chunk));
            }
            return;
        }
        let mut assignments: Vec<Vec<(usize, &mut [T])>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, chunk) in self.chunks.into_iter().enumerate() {
            assignments[i % workers].push((i, chunk));
        }
        let tasks: Vec<_> = assignments
            .into_iter()
            .map(|batch| {
                move || {
                    for (i, chunk) in batch {
                        f((i, chunk));
                    }
                }
            })
            .collect();
        pool::run_scoped(tasks);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_filter_for_each_mutates_matching() {
        let mut values: Vec<Option<usize>> = (0..100).map(|i| (i % 3 == 0).then_some(i)).collect();
        values
            .par_iter_mut()
            .filter(|v| v.is_none())
            .for_each(|v| *v = Some(999));
        for (i, v) in values.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(*v, Some(i));
            } else {
                assert_eq!(*v, Some(999));
            }
        }
    }

    #[test]
    fn par_chunks_mut_enumerate_covers_every_chunk() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn for_each_visits_everything_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u8> = vec![1; 500];
        items.par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn join_runs_both_closures() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn tiny_inputs_run_inline() {
        let items = [1, 2];
        let sum: Vec<i32> = items.par_iter().map(|&x| x + 1).collect();
        assert_eq!(sum, vec![2, 3]);
    }
}
