//! Offline replacement for the subset of [`rayon`](https://crates.io/crates/rayon)
//! this workspace uses, built on a real work-stealing scheduler.
//!
//! ## Scheduler design
//!
//! A lazily started, process-wide pool of worker threads executes every
//! parallel call. Work distribution is classic work stealing:
//!
//! * **Global injector** — threads outside the pool push their tasks onto a
//!   shared FIFO queue.
//! * **Per-worker deques** — a pool worker pushes the tasks of a nested
//!   parallel call onto its *own* deque and pops them back LIFO (newest
//!   first, for cache locality), while other threads steal from the FIFO
//!   end (oldest first, the coarsest remaining work).
//! * **Helping callers** — a thread that issued a parallel call never just
//!   blocks: while its scope is unfinished it executes queued tasks itself,
//!   stealing from the injector and every worker deque. Only when all of its
//!   scope's tasks are in flight on other threads does it sleep, and then on
//!   the scope's own latch.
//! * **Park/unpark** — idle workers park on a condvar; every task push
//!   wakes one sleeper. A parked worker re-checks the pending-task count
//!   under the sleeper lock, so wakeups are never lost.
//!
//! Because blocked callers steal, **nested parallelism is real**: a
//! `par_iter` issued from inside a worker (e.g. the evaluation harness's
//! task×run fan-out calling into the batched LSTM kernels) fans its tasks
//! out to the whole pool instead of running inline, and the scheduler stays
//! deadlock-free without rayon's fixed-size-pool caveats — every waiting
//! thread makes progress by executing someone's tasks, and the scope graph
//! is acyclic.
//!
//! ## Determinism
//!
//! Scheduling order is nondeterministic, but every combinator lands results
//! *by input index* (`par_iter().map().collect()` writes each span into its
//! own slot; `par_chunks_mut` hands each chunk its position), so the values
//! a parallel call produces are independent of thread count, steal order,
//! and chunk boundaries. Callers that need bit-identical results across
//! machines additionally keep each element's computation order fixed (see
//! `netsyn_nn`'s kernel contracts).
//!
//! ## Pool size — `NETSYN_POOL_THREADS`
//!
//! The pool spawns `available_parallelism` workers by default. Setting
//! `NETSYN_POOL_THREADS=N` (read once, at first use) forces exactly `N`
//! workers regardless of the host — `N=1` disables the pool entirely (every
//! parallel call runs inline on the caller), larger `N` oversubscribes a
//! small host, which CI uses to exercise stealing, nesting and cache-race
//! paths on 1-vCPU runners. [`current_num_threads`] reports the configured
//! size, so kernel chunking adapts automatically.
//!
//! ## Panics
//!
//! A panic inside a parallel task is caught on the worker, and the **first**
//! panic payload of the scope is re-raised on the calling thread with
//! [`std::panic::resume_unwind`] once the scope completes — matching real
//! rayon, and preserving the original payload (message/value) rather than
//! replacing it with a generic secondary panic. Payloads of further panics
//! in the same scope are dropped.
//!
//! Supported surface: `par_iter().map(..).collect()`, `par_iter().for_each`,
//! `par_iter_mut().filter(..).for_each`, `par_chunks_mut(..).enumerate()
//! .for_each`, and [`join`].
//!
//! ## Concurrency invariants (model-checked)
//!
//! The scheduler's load-bearing protocol — sleeper park/unpark — is
//! extracted into [`sleep::Sleepers`] and verified by a loom-style model
//! checker (`tests/sleeper_model.rs`, compiled under `--cfg loom` by the CI
//! `model-check` job, which swaps the pool's mutex/condvar/counter for
//! model-aware primitives via `sync_select`). The checked invariants:
//!
//! * **No lost wakeup** — for every schedule (within the documented
//!   preemption bound): if a producer queues a job while a consumer is
//!   parking, either the consumer's pending re-check under the sleeper lock
//!   sees the job, or the producer's wake sees the registered sleeper. A
//!   seeded bug that parks without the re-check is caught as a deadlock.
//! * **Pending counter is conservative** — jobs are counted under the queue
//!   lock before any consumer can pop them, so `pending == 0` implies the
//!   queues are empty and parking is safe.
//! * **Scope-completion wakeups reach helping callers** — a caller parked in
//!   the shared sleeper pool is woken when its scope's last task finishes
//!   (`wake_all_if_any`), so `run_scoped` cannot sleep through its own
//!   completion.
//!
//! The erased-job lifetime contract (see `ErasedJob` in `pool`) is enforced
//! structurally: `run_scoped` never returns before its latch reports every
//! job executed, and popped jobs are always run, never dropped unexecuted.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod sleep;
pub(crate) mod sync_select;

/// Below this many items per task, parallel calls run inline.
pub const MIN_ITEMS_PER_THREAD: usize = 2;

/// How many stealable tasks a parallel call splits into, per pool thread.
///
/// Work stealing balances best when there are more tasks than threads:
/// a thread that finishes its span early steals another instead of idling
/// at the scope barrier. The factor is small enough that per-task queue
/// round-trips stay negligible against the spans they carry.
pub const TASKS_PER_THREAD: usize = 4;

/// Number of worker threads in the pool (the `NETSYN_POOL_THREADS` override
/// or `available_parallelism`). `1` means every parallel call runs inline.
#[must_use]
pub fn current_num_threads() -> usize {
    pool::num_threads()
}

fn task_count(items: usize) -> usize {
    if items < 2 * MIN_ITEMS_PER_THREAD {
        return 1;
    }
    let threads = current_num_threads();
    if threads <= 1 {
        return 1;
    }
    (threads * TASKS_PER_THREAD)
        .min(items / MIN_ITEMS_PER_THREAD)
        .max(1)
}

/// Splits `0..len` into `tasks` near-equal contiguous spans.
fn spans(len: usize, tasks: usize) -> Vec<(usize, usize)> {
    let base = len / tasks;
    let extra = len % tasks;
    let mut out = Vec::with_capacity(tasks);
    let mut start = 0;
    for t in 0..tasks {
        let size = base + usize::from(t < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

mod pool {
    //! The work-stealing pool behind every parallel call (see the crate
    //! docs for the design).

    use crate::sleep::Sleepers;
    use crate::sync_select::{AtomicUsize, Mutex, Ordering};
    use std::any::Any;
    use std::cell::Cell;
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, OnceLock};

    /// A queued unit of work with its borrow lifetime erased.
    ///
    /// `run_scoped` accepts closures borrowing from its caller's stack
    /// (`'scope`), but jobs sit in process-global queues that cannot name
    /// that lifetime. The erasure is a raw pointer to the boxed closure,
    /// sound under a contract the scheduler upholds structurally:
    ///
    /// * `run_scoped` does not return until its scope latch reports every
    ///   one of its jobs executed, so the `'scope` borrows strictly outlive
    ///   every execution;
    /// * every job that enters a queue is eventually popped and [run]
    ///   exactly once — workers and helping callers only ever execute popped
    ///   jobs, never drop them unexecuted, and the queues themselves live in
    ///   a never-torn-down process-global pool;
    /// * `ErasedJob` has no `Drop` impl: leaking one (which would skip the
    ///   closure's destructor but touch no borrow) is the failure mode if
    ///   the contract were broken, not a use-after-free.
    ///
    /// [run]: ErasedJob::run
    struct ErasedJob {
        /// Owned `Box<dyn FnOnce() + Send + 'scope>` with `'scope` erased to
        /// `'static`; reboxed exactly once, in [`ErasedJob::run`].
        ptr: *mut (dyn FnOnce() + Send + 'static),
    }

    // SAFETY: the closure is `Send` (required by `ErasedJob::new`'s bound)
    // and ownership moves wholesale to whichever thread pops and runs the
    // job; the raw pointer is never aliased.
    unsafe impl Send for ErasedJob {}

    impl ErasedJob {
        /// Erases `'scope`. Caller contract: the job must be executed before
        /// `'scope` ends — `run_scoped` enforces this by blocking on its
        /// scope latch until every job it pushed has run.
        fn new<'scope>(job: Box<dyn FnOnce() + Send + 'scope>) -> ErasedJob {
            let ptr: *mut (dyn FnOnce() + Send + 'scope) = Box::into_raw(job);
            // SAFETY: transmuting a raw trait-object pointer to erase only
            // its lifetime bound — data pointer and vtable are unchanged.
            // The 'static claim is never acted on beyond what the struct
            // contract guarantees: the job runs (and is reboxed) strictly
            // before 'scope ends.
            let ptr = unsafe {
                std::mem::transmute::<
                    *mut (dyn FnOnce() + Send + 'scope),
                    *mut (dyn FnOnce() + Send + 'static),
                >(ptr)
            };
            ErasedJob { ptr }
        }

        /// Runs the job, consuming it.
        fn run(self) {
            // SAFETY: `ptr` came from `Box::into_raw` in `new` and `run`
            // consumes `self` (no Drop impl), so the box is reconstructed
            // exactly once; the contract above guarantees the closure's
            // borrows are still live.
            let job = unsafe { Box::from_raw(self.ptr) };
            job();
        }
    }

    struct Shared {
        /// `queues[0]` is the global injector; `queues[1 + w]` is worker
        /// `w`'s deque. Owners push/pop the back (LIFO); stealers and the
        /// injector pop the front (FIFO), taking the oldest — and with
        /// span-splitting callers, typically coarsest — work first.
        queues: Vec<Mutex<VecDeque<ErasedJob>>>,
        /// Pending-work counter + parked-worker bookkeeping; the park/wake
        /// protocol lives in [`Sleepers`] so the loom model suite can check
        /// it in isolation.
        sleepers: Sleepers,
        workers: usize,
    }

    /// `None` until first use; `None` forever when the pool is configured
    /// to a single thread (all parallel calls run inline).
    static POOL: OnceLock<Option<Arc<Shared>>> = OnceLock::new();

    thread_local! {
        /// `Some(w)` on pool worker `w`: nested scopes push onto the local
        /// deque and the local deque is popped LIFO first.
        static WORKER: Cell<Option<usize>> = const { Cell::new(None) };
    }

    /// The pool size: a strictly parsed `NETSYN_POOL_THREADS` override, or
    /// `available_parallelism`. An invalid override — not an integer, zero,
    /// or non-unicode — is not silently swallowed: one warning line naming
    /// the rejected value and the default used is printed to stderr (the
    /// pool is built once per process, so the warning fires at most once).
    fn configured_threads() -> usize {
        let default =
            || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        match std::env::var("NETSYN_POOL_THREADS") {
            Ok(value) => match value.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    let fallback = default();
                    eprintln!(
                        "netsyn: ignoring invalid NETSYN_POOL_THREADS={value:?} \
                         (expected an integer >= 1); using {fallback} threads"
                    );
                    fallback
                }
            },
            Err(std::env::VarError::NotPresent) => default(),
            Err(std::env::VarError::NotUnicode(raw)) => {
                let fallback = default();
                eprintln!(
                    "netsyn: ignoring non-unicode NETSYN_POOL_THREADS={raw:?} \
                     (expected an integer >= 1); using {fallback} threads"
                );
                fallback
            }
        }
    }

    pub(crate) fn num_threads() -> usize {
        shared().map_or(1, |s| s.workers)
    }

    fn shared() -> Option<&'static Arc<Shared>> {
        POOL.get_or_init(|| {
            let workers = configured_threads();
            if workers <= 1 {
                return None;
            }
            let shared = Arc::new(Shared {
                queues: (0..=workers).map(|_| Mutex::new(VecDeque::new())).collect(),
                sleepers: Sleepers::new(),
                workers,
            });
            for worker in 0..workers {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{worker}"))
                    .spawn(move || worker_loop(&shared, worker))
                    .expect("spawn rayon shim worker");
            }
            Some(shared)
        })
        .as_ref()
    }

    fn worker_loop(shared: &Shared, me: usize) {
        WORKER.with(|w| w.set(Some(me)));
        loop {
            if let Some(job) = find_work(shared, Some(me)) {
                job.run();
            } else {
                // Park until a job is pushed. The `pending` re-check under
                // the sleeper lock (inside `park_unless`) closes the race
                // with `push_jobs`: a push either sees this sleeper and
                // notifies, or the parker sees the push's `pending`
                // increment and never sleeps.
                shared.sleepers.park_unless(|| false);
            }
        }
    }

    /// Takes one queued job: the local deque newest-first (when called from
    /// a worker), then the injector, then every other worker's deque
    /// oldest-first.
    fn find_work(shared: &Shared, me: Option<usize>) -> Option<ErasedJob> {
        if shared.sleepers.pending() == 0 {
            return None;
        }
        if let Some(w) = me {
            if let Some(job) = take(shared, 1 + w, true) {
                return Some(job);
            }
        }
        if let Some(job) = take(shared, 0, false) {
            return Some(job);
        }
        // Start the steal scan after our own slot so victims differ across
        // workers instead of all hammering worker 0's deque.
        let start = me.map_or(0, |w| w + 1);
        for offset in 0..shared.workers {
            let victim = (start + offset) % shared.workers;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = take(shared, 1 + victim, false) {
                return Some(job);
            }
        }
        None
    }

    fn take(shared: &Shared, queue: usize, newest_first: bool) -> Option<ErasedJob> {
        let mut jobs = shared.queues[queue].lock().expect("rayon shim queue lock");
        let job = if newest_first {
            jobs.pop_back()
        } else {
            jobs.pop_front()
        };
        if job.is_some() {
            shared.sleepers.take_one();
        }
        job
    }

    /// Pushes a whole scope's jobs under one queue-lock acquisition and
    /// wakes at most one sleeper per job in one pass — far cheaper than a
    /// lock + notify round-trip per job when scopes carry many small tasks.
    fn push_jobs(shared: &Shared, jobs: Vec<ErasedJob>) {
        let count = jobs.len();
        let queue = WORKER.with(Cell::get).map_or(0, |w| 1 + w);
        {
            let mut deque = shared.queues[queue].lock().expect("rayon shim queue lock");
            deque.extend(jobs);
            // Count the jobs *before* releasing the queue lock: a taker must
            // hold this lock to pop, so no thread can ever pop a job that is
            // not yet reflected in `pending` (which would transiently drive
            // the counter through zero and let workers park on queued work).
            shared.sleepers.add_pending(count);
        }
        shared.sleepers.wake(count);
    }

    /// Completion latch of one `run_scoped` call, carrying the first panic
    /// payload of the scope.
    struct ScopeLatch {
        remaining: AtomicUsize,
        panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    }

    impl ScopeLatch {
        fn new(tasks: usize) -> Self {
            ScopeLatch {
                remaining: AtomicUsize::new(tasks),
                panic: Mutex::new(None),
            }
        }

        /// Stores `payload` if it is the scope's first panic; later panics
        /// in the same scope are dropped (matching rayon, which re-raises
        /// one payload per scope).
        fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
            let mut slot = self.panic.lock().expect("rayon shim panic slot");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }

        /// Marks one task finished. When it is the scope's last, every
        /// sleeper is woken: the scope's caller may be parked in the shared
        /// sleeper pool (see `run_scoped`) and must observe completion.
        fn complete_one(&self, shared: &Shared) {
            if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                shared.sleepers.wake_all_if_any();
            }
        }

        fn is_done(&self) -> bool {
            self.remaining.load(Ordering::SeqCst) == 0
        }

        fn take_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
            self.panic.lock().expect("rayon shim panic slot").take()
        }
    }

    /// Runs every task on the pool and returns once all have finished. The
    /// caller is a full scheduler participant: it executes queued tasks
    /// (its own scope's first, via the local LIFO deque) while waiting, so
    /// nested calls parallelize instead of running inline.
    ///
    /// # Panics
    ///
    /// If any task panicked, the first panic's payload is re-raised here
    /// via [`resume_unwind`], after the whole scope has completed.
    pub fn run_scoped<'scope, F>(tasks: Vec<F>)
    where
        F: FnOnce() + Send + 'scope,
    {
        let Some(shared) = shared() else {
            // Single-threaded pool: run inline; a panic unwinds with its
            // original payload untouched.
            for task in tasks {
                task();
            }
            return;
        };
        if tasks.len() <= 1 {
            for task in tasks {
                task();
            }
            return;
        }
        let latch = Arc::new(ScopeLatch::new(tasks.len()));
        let jobs: Vec<ErasedJob> = tasks
            .into_iter()
            .map(|task| {
                let latch = Arc::clone(&latch);
                // The 'scope → 'static erasure and its soundness contract
                // live in `ErasedJob`; the latch wait below is what upholds
                // the contract's "executed before 'scope ends" obligation.
                ErasedJob::new(Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        latch.record_panic(payload);
                    }
                    latch.complete_one(shared);
                }))
            })
            .collect();
        push_jobs(shared, jobs);
        let me = WORKER.with(Cell::get);
        loop {
            if latch.is_done() {
                break;
            }
            if let Some(job) = find_work(shared, me) {
                // The job may belong to another scope; executing it is
                // still sound (its own latch keeps its borrows alive) and
                // keeps every waiting thread productive.
                job.run();
                continue;
            }
            // Nothing runnable right now and the scope is not finished:
            // park in the *shared* sleeper pool, not on the latch alone. A
            // task of this scope running elsewhere may spawn new jobs that
            // only this thread is free to execute (every worker can be
            // blocked inside a nested scope of its own), so the sleep must
            // be interruptible by any push — `push_jobs` wakes sleepers,
            // and `complete_one` wakes them when a scope finishes. The
            // re-checks under the sleeper lock (inside `park_unless`) close
            // both races.
            shared.sleepers.park_unless(|| latch.is_done());
        }
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
    }
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = {
        let rb_slot = &mut rb;
        let mut b = Some(b);
        let mut a = Some(a);
        let mut ra_slot = None;
        {
            let ra_ref = &mut ra_slot;
            let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
                Box::new(move || *ra_ref = Some((a.take().expect("a runs once"))())),
                Box::new(move || *rb_slot = Some((b.take().expect("b runs once"))())),
            ];
            pool::run_scoped(tasks);
        }
        ra_slot.expect("task a completed")
    };
    (ra, rb.expect("task b completed"))
}

/// The glob-importable API surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over the slice's elements.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// A parallel iterator over the slice's elements, mutably.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;

    /// A parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { items: self }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over `&T` items.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f`.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Applies `f` to every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        self.map(f).run();
    }
}

/// The result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    fn run<R>(self) -> Vec<R>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        let items = self.items;
        let f = &self.f;
        let tasks = task_count(items.len());
        if tasks == 1 {
            return items.iter().map(f).collect();
        }
        let mut parts: Vec<Vec<R>> = (0..tasks).map(|_| Vec::new()).collect();
        let tasks: Vec<_> = parts
            .iter_mut()
            .zip(spans(items.len(), tasks))
            .map(|(part, (lo, hi))| move || *part = items[lo..hi].iter().map(f).collect())
            .collect();
        pool::run_scoped(tasks);
        parts.into_iter().flatten().collect()
    }

    /// Collects the mapped elements, preserving input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        self.run().into_iter().collect()
    }

    /// Applies the mapped closure for its side effects.
    pub fn for_each<R>(self)
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        let _ = self.run();
    }
}

/// Parallel iterator over `&mut T` items.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Keeps only elements matching `predicate`.
    pub fn filter<P>(self, predicate: P) -> ParFilterMut<'a, T, P>
    where
        P: Fn(&&mut T) -> bool + Sync,
    {
        ParFilterMut {
            items: self.items,
            predicate,
        }
    }

    /// Applies `f` to every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        self.filter(|_| true).for_each(f);
    }
}

/// The result of [`ParIterMut::filter`].
pub struct ParFilterMut<'a, T, P> {
    items: &'a mut [T],
    predicate: P,
}

impl<'a, T: Send, P> ParFilterMut<'a, T, P>
where
    P: Fn(&&mut T) -> bool + Sync,
{
    /// Applies `f` to every element matching the predicate.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let predicate = &self.predicate;
        let f = &f;
        let len = self.items.len();
        let tasks = task_count(len);
        if tasks == 1 {
            for item in self.items.iter_mut() {
                if predicate(&item) {
                    f(item);
                }
            }
            return;
        }
        let mut rest = self.items;
        let mut jobs = Vec::with_capacity(tasks);
        for (lo, hi) in spans(len, tasks) {
            let (span, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            jobs.push(move || {
                for item in span.iter_mut() {
                    if predicate(&item) {
                        f(item);
                    }
                }
            });
        }
        pool::run_scoped(jobs);
    }
}

/// Parallel iterator over mutable chunks; see
/// [`ParallelSliceMut::par_chunks_mut`].
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    #[must_use]
    pub fn enumerate(self) -> ParEnumeratedChunksMut<'a, T> {
        ParEnumeratedChunksMut {
            chunks: self.chunks,
        }
    }

    /// Applies `f` to every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// The result of [`ParChunksMut::enumerate`].
pub struct ParEnumeratedChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParEnumeratedChunksMut<'a, T> {
    /// Applies `f` to every `(index, chunk)` pair.
    ///
    /// Chunks are already caller-coarsened units of work (callers size them
    /// for the pool, see `TASKS_PER_THREAD`), so each chunk becomes one
    /// stealable task — the per-item minimum is not re-applied, and the
    /// work-stealing scheduler balances uneven chunks across threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let f = &f;
        if current_num_threads() == 1 || self.chunks.len() <= 1 {
            for (i, chunk) in self.chunks.into_iter().enumerate() {
                f((i, chunk));
            }
            return;
        }
        let tasks: Vec<_> = self
            .chunks
            .into_iter()
            .enumerate()
            .map(|(i, chunk)| move || f((i, chunk)))
            .collect();
        pool::run_scoped(tasks);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_filter_for_each_mutates_matching() {
        let mut values: Vec<Option<usize>> = (0..100).map(|i| (i % 3 == 0).then_some(i)).collect();
        values
            .par_iter_mut()
            .filter(|v| v.is_none())
            .for_each(|v| *v = Some(999));
        for (i, v) in values.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(*v, Some(i));
            } else {
                assert_eq!(*v, Some(999));
            }
        }
    }

    #[test]
    fn par_chunks_mut_enumerate_covers_every_chunk() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn for_each_visits_everything_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u8> = vec![1; 500];
        items.par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn join_runs_both_closures() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    /// Subprocess entry point: under `NETSYN_POOL_WARN_CHILD=1` (set only
    /// by the parent test below) this forces pool construction so an
    /// invalid `NETSYN_POOL_THREADS` value hits `configured_threads`.
    #[test]
    fn pool_warn_child_builds_the_pool() {
        if std::env::var("NETSYN_POOL_WARN_CHILD").is_err() {
            return;
        }
        let _ = current_num_threads();
    }

    #[test]
    fn invalid_pool_threads_env_warns_and_falls_back() {
        // The pool is built once per process, so the invalid value must be
        // seen at first use: run in a subprocess.
        let exe = std::env::current_exe().expect("test binary path");
        let output = std::process::Command::new(&exe)
            .args([
                "--exact",
                "tests::pool_warn_child_builds_the_pool",
                "--nocapture",
            ])
            .env("NETSYN_POOL_WARN_CHILD", "1")
            .env("NETSYN_POOL_THREADS", "not-a-number")
            .output()
            .expect("spawn warn child");
        assert!(output.status.success());
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("invalid NETSYN_POOL_THREADS") && stderr.contains("not-a-number"),
            "the warning must name the rejected value; stderr:\n{stderr}"
        );
        assert!(
            stderr.contains("using"),
            "the warning must name the default used; stderr:\n{stderr}"
        );
    }

    #[test]
    fn valid_pool_threads_env_stays_silent() {
        let exe = std::env::current_exe().expect("test binary path");
        let output = std::process::Command::new(&exe)
            .args([
                "--exact",
                "tests::pool_warn_child_builds_the_pool",
                "--nocapture",
            ])
            .env("NETSYN_POOL_WARN_CHILD", "1")
            .env("NETSYN_POOL_THREADS", "2")
            .output()
            .expect("spawn warn child");
        assert!(output.status.success());
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            !stderr.contains("NETSYN_POOL_THREADS"),
            "a valid override must not warn; stderr:\n{stderr}"
        );
    }

    #[test]
    fn tiny_inputs_run_inline() {
        let items = [1, 2];
        let sum: Vec<i32> = items.par_iter().map(|&x| x + 1).collect();
        assert_eq!(sum, vec![2, 3]);
    }

    #[test]
    fn nested_parallel_calls_produce_correct_results() {
        // A par_iter inside a par_iter inside a join: with work stealing the
        // inner calls fan out to the pool (instead of running inline), and
        // results still land by index at every level.
        let outer: Vec<usize> = (0..64).collect();
        let (left, right): (Vec<usize>, Vec<usize>) = join(
            || {
                outer
                    .par_iter()
                    .map(|&i| {
                        let inner: Vec<usize> = (0..32).collect();
                        let mapped: Vec<usize> = inner.par_iter().map(|&j| i * 32 + j).collect();
                        mapped.iter().sum::<usize>()
                    })
                    .collect()
            },
            || {
                outer
                    .par_iter()
                    .map(|&i| {
                        let inner: Vec<usize> = (0..32).collect();
                        let mapped: Vec<usize> = inner.par_iter().map(|&j| i * 32 + j).collect();
                        mapped.into_iter().sum::<usize>()
                    })
                    .collect()
            },
        );
        let expected: Vec<usize> = (0..64)
            .map(|i| (0..32).map(|j| i * 32 + j).sum::<usize>())
            .collect();
        assert_eq!(left, expected);
        assert_eq!(right, expected);
    }

    #[test]
    fn deep_nesting_from_workers_does_not_deadlock() {
        // Three levels of nesting with more tasks than pool threads at each
        // level: every blocked caller must keep stealing for this to finish.
        let level0: Vec<usize> = (0..16).collect();
        let totals: Vec<usize> = level0
            .par_iter()
            .map(|&a| {
                let level1: Vec<usize> = (0..16).collect();
                let sums: Vec<usize> = level1
                    .par_iter()
                    .map(|&b| {
                        let level2: Vec<usize> = (0..16).collect();
                        let leaf: Vec<usize> = level2.par_iter().map(|&c| a + b + c).collect();
                        leaf.into_iter().sum()
                    })
                    .collect();
                sums.into_iter().sum()
            })
            .collect();
        let expected: usize = (0..16)
            .map(|a| {
                (0..16)
                    .map(|b| (0..16).map(|c| a + b + c).sum::<usize>())
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(totals.into_iter().sum::<usize>(), expected);
    }

    #[test]
    fn nested_tasks_genuinely_overlap_in_time() {
        // Structural proof of nested parallelism, independent of core count
        // (the OS time-slices an oversubscribed pool): from inside a pooled
        // outer scope, a nested `join` runs two closures that rendezvous —
        // each signals it has started and waits until both have. The test
        // can only finish if the sibling closure is picked up by *another*
        // thread while the first blocks, which is exactly what the old
        // shim's run-nested-calls-inline rule made impossible (it executed
        // the halves one after the other on the same thread, so the first
        // half waited on a sibling that could never start). At most one
        // thread blocks in the rendezvous and every other task is pure
        // compute, so with a pool of two or more workers some thread is
        // always free to steal the queued sibling. Skipped on a 1-thread
        // pool, where inline execution is the contract.
        use std::sync::{Condvar, Mutex};
        use std::time::Duration;
        if current_num_threads() < 2 {
            return;
        }
        let rendezvous = (Mutex::new(0usize), Condvar::new());
        let meet = |(count, condvar): &(Mutex<usize>, Condvar)| {
            let mut started = count.lock().unwrap();
            *started += 1;
            condvar.notify_all();
            while *started < 2 {
                let (guard, timeout) = condvar
                    .wait_timeout(started, Duration::from_secs(30))
                    .unwrap();
                started = guard;
                assert!(
                    !timeout.timed_out(),
                    "nested sibling task never started: the pool ran the \
                     nested join inline instead of letting another thread \
                     steal it"
                );
            }
        };
        let outer: Vec<usize> = (0..64).collect();
        let sums: Vec<usize> = outer
            .par_iter()
            .map(|&i| {
                if i == 0 {
                    let (a, b) = join(|| meet(&rendezvous), || meet(&rendezvous));
                    let ((), ()) = (a, b);
                }
                i * 2
            })
            .collect();
        assert_eq!(sums, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "original worker panic payload 1234")]
    fn worker_panic_payload_reaches_the_caller() {
        // Regression test: the old shim reduced every task panic to a
        // generic `assert!("a rayon shim task panicked")`, losing the
        // original message. `should_panic(expected = ..)` matches against
        // the re-raised payload, so this only passes if the payload string
        // survives the pool round-trip via resume_unwind.
        let items: Vec<usize> = (0..256).collect();
        items.par_iter().for_each(|&i| {
            if i == 97 {
                panic!("original worker panic payload {}", 1234);
            }
        });
    }

    #[test]
    #[should_panic(expected = "nested panic payload survives")]
    fn nested_scope_panic_payload_reaches_the_caller() {
        let items: Vec<usize> = (0..64).collect();
        items.par_iter().for_each(|&i| {
            let inner: Vec<usize> = (0..64).collect();
            inner.par_iter().for_each(|&j| {
                if i == 31 && j == 62 {
                    panic!("nested panic payload survives");
                }
            });
        });
    }

    #[test]
    fn pool_survives_a_panicked_scope() {
        // A panicking task must not kill pool workers or poison the
        // scheduler: after catching the re-raised payload, the next
        // parallel call works normally and visits every item.
        let result = std::panic::catch_unwind(|| {
            let items: Vec<usize> = (0..512).collect();
            items.par_iter().for_each(|&i| {
                if i == 200 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..512).collect();
        items.par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 512);
    }

    #[test]
    fn many_concurrent_external_scopes() {
        // Hammer the pool from several non-worker threads at once: external
        // callers push to the injector and help; totals must be exact.
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let items: Vec<usize> = (0..1000).collect();
                    let mapped: Vec<usize> = items.par_iter().map(|&x| x + 1).collect();
                    total.fetch_add(mapped.into_iter().sum(), Ordering::SeqCst);
                });
            }
        });
        let per_thread: usize = (0..1000).map(|x| x + 1).sum();
        assert_eq!(total.load(Ordering::SeqCst), 8 * per_thread);
    }
}
