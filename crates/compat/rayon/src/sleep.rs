//! The pool's sleeper/wakeup protocol, extracted into one type so the loom
//! model suite (`tests/sleeper_model.rs`, run under `--cfg loom`) can drive
//! it with model threads and exhaustively check the no-lost-wakeup
//! invariant.
//!
//! # Protocol
//!
//! A [`Sleepers`] pairs a `pending` job counter with a mutex-guarded sleeper
//! count and a condvar:
//!
//! * A **producer** counts new jobs with [`Sleepers::add_pending`] *while
//!   still holding the queue lock it pushed under* (so no consumer can pop a
//!   job that is not yet counted), then calls [`Sleepers::wake`], which
//!   takes the sleeper lock and notifies at most `min(count, sleepers)`
//!   parked threads.
//! * A **consumer** that found nothing to do calls
//!   [`Sleepers::park_unless`], which re-checks `pending` (and the caller's
//!   own done-predicate) *under the sleeper lock* before sleeping.
//!
//! # Invariant: no lost wakeup
//!
//! Because the producer's `pending` increment happens-before its `wake`
//! takes the sleeper lock, and the consumer's final `pending` check happens
//! under that same lock, every push/park race resolves safely: either the
//! parker sees the new `pending` count and never sleeps, or it is already
//! registered in `sleepers` when `wake` counts — so it is notified. Dropping
//! the re-check (the seeded bug in the model suite) deadlocks a consumer
//! whose wakeup raced its park decision; the model checker finds that
//! schedule within a two-preemption bound.

use crate::sync_select::{AtomicUsize, Condvar, Mutex, Ordering};

/// Sleeper bookkeeping for a work-stealing pool: a pending-work counter,
/// a parked-thread count, and the condvar they rendezvous on.
#[derive(Debug, Default)]
pub struct Sleepers {
    /// Queued-but-not-yet-taken jobs; the cheap "is there anything to do"
    /// signal checked before scanning queues or parking.
    pending: AtomicUsize,
    /// Parked threads, guarded by a mutex so a push can never race a park
    /// decision (parkers re-check `pending` under this lock).
    sleepers: Mutex<usize>,
    wakeup: Condvar,
}

impl Sleepers {
    #[must_use]
    pub fn new() -> Sleepers {
        Sleepers::default()
    }

    /// Records `count` newly queued jobs. Must be called before the matching
    /// [`Sleepers::wake`] and — to keep the counter conservative — while
    /// still holding the lock of the queue the jobs were pushed under, so no
    /// consumer can pop a job that is not yet counted (which would
    /// transiently drive the counter through zero and let workers park on
    /// queued work).
    pub fn add_pending(&self, count: usize) {
        self.pending.fetch_add(count, Ordering::SeqCst);
    }

    /// Records that one queued job was taken. Call while holding the queue
    /// lock the job was popped under.
    pub fn take_one(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    /// Queued-but-not-yet-taken job count.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// Wakes up to `count` parked threads (one notify per job, capped at the
    /// number actually parked).
    pub fn wake(&self, count: usize) {
        let sleepers = self.sleepers.lock().expect("rayon shim sleeper lock");
        let wake = count.min(*sleepers);
        for _ in 0..wake {
            self.wakeup.notify_one();
        }
    }

    /// Wakes every parked thread if any are parked. Used on scope
    /// completion: the scope's caller may be parked in the shared sleeper
    /// pool and must observe that its latch is done.
    pub fn wake_all_if_any(&self) {
        let sleepers = self.sleepers.lock().expect("rayon shim sleeper lock");
        if *sleepers > 0 {
            self.wakeup.notify_all();
        }
    }

    /// Parks the calling thread for one wakeup — unless work is pending or
    /// `done` already holds, both re-checked *under the sleeper lock*, which
    /// is what makes the park decision race-free against
    /// [`Sleepers::add_pending`] + [`Sleepers::wake`]. Returns after one
    /// notification (or spuriously, per condvar semantics); callers loop.
    pub fn park_unless<F: FnOnce() -> bool>(&self, done: F) {
        let mut sleepers = self.sleepers.lock().expect("rayon shim sleeper lock");
        if done() || self.pending.load(Ordering::SeqCst) > 0 {
            return;
        }
        *sleepers += 1;
        let mut sleepers = self.wakeup.wait(sleepers).expect("rayon shim park");
        *sleepers -= 1;
    }
}
