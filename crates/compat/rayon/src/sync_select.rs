//! `cfg(loom)`-switched synchronization primitives.
//!
//! Compiled with `--cfg loom` (the CI `model-check` job), the pool's mutex,
//! condvar and pending counter come from the workspace's loom shim, whose
//! primitives are scheduling points inside a `loom::model` run and plain std
//! wrappers outside one. A normal build uses `std::sync` directly, so the
//! production scheduler is byte-identical to the pre-model-checking code.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::AtomicUsize;
#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::AtomicUsize;
#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex};

pub(crate) use std::sync::atomic::Ordering;
