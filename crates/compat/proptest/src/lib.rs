//! Offline replacement for the subset of
//! [`proptest`](https://crates.io/crates/proptest) this workspace uses.
//!
//! A [`Strategy`] is simply a deterministic sampler: integer ranges sample
//! uniformly, [`prop_map`](Strategy::prop_map) transforms, and
//! [`collection::vec`] builds vectors with a sampled length. The
//! [`proptest!`] macro expands each property into a plain `#[test]` that
//! runs [`DEFAULT_CASES`] sampled cases with an RNG seeded from the test
//! name, so failures reproduce deterministically. There is no shrinking —
//! a failing case panics with the values Debug-printed by the assertion.

use std::ops::{Range, RangeInclusive};

/// Number of sampled cases each property runs.
pub const DEFAULT_CASES: usize = 128;

/// The deterministic RNG driving every property (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose seed is derived from `name` (FNV-1a), so every
    /// property gets a distinct but reproducible stream.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX % span) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// A deterministic value sampler.
pub trait Strategy {
    /// The type of the sampled values.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Samples a value, builds a dependent strategy from it with `f`, and
    /// samples from that (upstream `prop_flat_map`; no shrinking here, like
    /// everything else in this shim).
    fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (upstream `boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (the shape upstream's `BoxedStrategy` exposes).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

// A Vec of strategies samples element-wise, like upstream proptest.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

// Tuples of strategies sample component-wise, like upstream proptest.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for collection strategies (the equivalent
    /// of proptest's `SizeRange`). Built via `From` so literals like
    /// `0..=12` infer `usize`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    /// A vector strategy: a [`SizeRange`]-sampled number of elements drawn
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Builds vectors whose length is sampled from `len` and whose elements
    /// are sampled from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = (self.len.min..=self.len.max).generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirror of proptest's `prop` path (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Strategy,
    };
}

/// Asserts a condition inside a property, printing the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, printing both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property, printing both values on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares deterministic property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..$crate::DEFAULT_CASES {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn prop_map_and_vec_compose() {
        let strat = prop::collection::vec((0u8..10).prop_map(|x| x * 2), 2..=4);
        let mut rng = crate::TestRng::deterministic("compose");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x % 2 == 0 && x < 20));
        }
    }

    #[test]
    fn same_name_reproduces_the_same_stream() {
        let mut a = crate::TestRng::deterministic("stream");
        let mut b = crate::TestRng::deterministic("stream");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn flat_map_threads_the_sampled_value() {
        // Pick a length, then build vectors of exactly that length.
        let strat = (1usize..5).prop_flat_map(|n| prop::collection::vec(0u8..10, n..=n));
        let mut rng = crate::TestRng::deterministic("flat_map");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn boxed_strategies_erase_and_compose() {
        let strats: Vec<BoxedStrategy<i64>> = vec![
            (0i64..10).boxed(),
            (100i64..=100).prop_map(|x| x + 1).boxed(),
        ];
        let mut rng = crate::TestRng::deterministic("boxed");
        for _ in 0..50 {
            let v = strats.generate(&mut rng);
            assert_eq!(v.len(), 2);
            assert!((0..10).contains(&v[0]));
            assert_eq!(v[1], 101);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0usize..100, ys in prop::collection::vec(-1i64..=1, 0..=3)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len() <= 3, true);
        }
    }
}
