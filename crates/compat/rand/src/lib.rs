//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! The build environment of this workspace has no access to crates.io, so the
//! handful of `rand` APIs the workspace actually uses are re-implemented here
//! and wired in as a path dependency under the same crate name:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] with `gen`, `gen_range`,
//!   `gen_bool` over the numeric types the workspace samples;
//! * [`seq::SliceRandom`] with `choose` and `shuffle` (Fisher–Yates);
//! * [`thread_rng`] backed by a per-thread splitmix64 stream seeded from the
//!   system clock and a process-wide counter.
//!
//! Distribution details intentionally differ from upstream `rand` (Lemire
//! rejection, widening multiplies, …): the workspace only relies on
//! determinism for a fixed seed, uniformity good enough for stochastic
//! search, and in-range guarantees — not on upstream's exact value streams.

use std::cell::RefCell;
use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniformly random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full value domain (the subset
/// of upstream's `Standard` distribution the workspace uses).
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be sampled uniformly from a range. The blanket
/// [`SampleRange`] impls below tie the range's element type to
/// [`Rng::gen_range`]'s return type, which is what lets inference resolve
/// expressions like `x + rng.gen_range(-0.5..0.5)`.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

/// Uniform draw from `[0, span)` by rejection sampling on 64-bit words
/// (`span` never exceeds `u64::MAX + 1` for the integer types above).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        // Only reachable for full-domain ranges; a raw word is uniform.
        return rng.next_u64() as u128;
    }
    let span = span as u64;
    if span.is_power_of_two() {
        return (rng.next_u64() & (span - 1)) as u128;
    }
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span) as u128;
        }
    }
}

macro_rules! impl_float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                start + unit * (end - start)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_sample_uniform!(f32, f64);

/// User-facing random sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64 (the
    /// same convention upstream `rand` uses, so seeds stay well mixed).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// splitmix64: the seed expander, also the engine behind [`thread_rng`].
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Commonly used generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard seedable generator (splitmix64-based; the
    /// upstream `StdRng` value stream is not reproduced).
    #[derive(Debug, Clone)]
    pub struct StdRng(SplitMix64);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut word = [0u8; 8];
            word.copy_from_slice(&seed[..8]);
            StdRng(SplitMix64::new(u64::from_le_bytes(word)))
        }
    }

    /// A handle to the calling thread's generator; see [`super::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) SplitMix64);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

thread_local! {
    static THREAD_RNG_SEED: RefCell<u64> = RefCell::new({
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        let stack_entropy = &nanos as *const u64 as u64;
        nanos ^ stack_entropy.rotate_left(32)
    });
}

/// Returns a non-deterministically seeded generator for the calling thread.
#[must_use]
pub fn thread_rng() -> rngs::ThreadRng {
    let seed = THREAD_RNG_SEED.with(|s| {
        let mut s = s.borrow_mut();
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        *s
    });
    rngs::ThreadRng(SplitMix64::new(seed))
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if the slice is
        /// empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[derive(Debug)]
    struct TestRng(SplitMix64);

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    fn rng(seed: u64) -> TestRng {
        TestRng(SplitMix64::new(seed))
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng(1);
        for _ in 0..2000 {
            let a: usize = r.gen_range(0..7);
            assert!(a < 7);
            let b: i64 = r.gen_range(-3..=3);
            assert!((-3..=3).contains(&b));
            let c: f32 = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&c));
            let d: f64 = r.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut r = rng(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = rng(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn standard_floats_are_in_unit_interval() {
        let mut r = rng(4);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn slice_choose_and_shuffle() {
        let mut r = rng(5);
        let items = [1, 2, 3, 4];
        assert!(items.choose(&mut r).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let mut xs: Vec<u32> = (0..50).collect();
        let original = xs.clone();
        xs.shuffle(&mut r);
        assert_ne!(xs, original, "50 elements should not shuffle to identity");
        xs.sort_unstable();
        assert_eq!(xs, original);
    }

    #[test]
    fn dyn_rng_core_supports_sampling() {
        let mut r = rng(6);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let v = dyn_rng.gen_range(0..10usize);
        assert!(v < 10);
        let f: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn thread_rng_produces_values() {
        let mut a = thread_rng();
        let mut b = thread_rng();
        // Distinct handles advance the underlying stream.
        let _ = a.next_u64();
        let _ = b.next_u64();
    }
}
