//! Self-tests for the model checker: correct protocols pass with a complete
//! bounded exploration, and the classic bug in each primitive family is
//! *found* (the checker panics with a diagnosis).

use loom::model::Builder;
use loom::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use loom::sync::{Arc, Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn catches<F: Fn() + Send + Sync + 'static>(f: F) -> String {
    let err = catch_unwind(AssertUnwindSafe(move || {
        Builder::new().check(f);
    }))
    .expect_err("model should have caught the seeded bug");
    if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        String::from("<non-string panic payload>")
    }
}

#[test]
fn mutex_counter_is_exact() {
    let report = Builder::new().check(|| {
        let n = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    *n.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
    assert!(report.complete, "bounded space should be exhausted");
    assert!(report.iterations > 1, "must explore more than one schedule");
}

#[test]
fn finds_lost_update_in_unsynchronised_rmw() {
    // load-then-store increment: the textbook lost update. The model must
    // find the interleaving where both threads read 0.
    let msg = catches(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    let v = n.load(SeqCst);
                    n.store(v + 1, SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(SeqCst), 2, "lost update");
    });
    assert!(msg.contains("lost update"), "diagnosis was: {msg}");
}

#[test]
fn fetch_add_has_no_lost_update() {
    let report = Builder::new().check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    n.fetch_add(1, SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(SeqCst), 2);
    });
    assert!(report.complete);
}

#[test]
fn finds_lost_wakeup_when_flag_is_set_outside_the_lock() {
    // Classic lost wakeup: the consumer checks the flag and waits under two
    // *separate* lock acquisitions, so the producer's set+notify can land in
    // the window between them; the notify finds no registered waiter and is
    // lost, and the consumer waits forever. The model must report deadlock.
    let msg = catches(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let producer = {
            let pair = Arc::clone(&pair);
            loom::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut g = lock.lock().unwrap();
                *g = true;
                cv.notify_one();
                drop(g);
            })
        };
        let (lock, cv) = &*pair;
        // BUG (seeded): the check-then-wait is not atomic.
        let ready = *lock.lock().unwrap();
        if !ready {
            let g = lock.lock().unwrap();
            let _woken = cv.wait(g).unwrap();
        }
        producer.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "diagnosis was: {msg}");
}

#[test]
fn notify_under_lock_has_no_lost_wakeup() {
    let report = Builder::new().check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let producer = {
            let pair = Arc::clone(&pair);
            loom::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut g = lock.lock().unwrap();
                *g = true;
                // Notify while holding the lock: the waiter is either not
                // yet in wait (it holds the lock) or already registered.
                cv.notify_one();
                drop(g);
            })
        };
        let (lock, cv) = &*pair;
        let mut done = lock.lock().unwrap();
        while !*done {
            done = cv.wait(done).unwrap();
        }
        drop(done);
        producer.join().unwrap();
    });
    assert!(report.complete);
}

#[test]
fn cas_loop_is_exact_under_contention() {
    let report = Builder::new().check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    // cap at 3: fetch_update CAS loop
                    let _ = n.fetch_update(SeqCst, SeqCst, |v| (v < 3).then_some(v + 1));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(n.load(SeqCst) <= 3);
        assert_eq!(n.load(SeqCst), 2);
    });
    assert!(report.complete);
}

#[test]
fn yield_makes_spin_wait_terminate() {
    let report = Builder::new().check(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let setter = {
            let flag = Arc::clone(&flag);
            loom::thread::spawn(move || {
                flag.store(1, SeqCst);
            })
        };
        // Spin with yield: the model disables the spinner each round until
        // the setter has run, so this terminates in every schedule.
        while flag.load(SeqCst) == 0 {
            loom::thread::yield_now();
        }
        setter.join().unwrap();
    });
    assert!(report.complete);
}

#[test]
fn finds_deadlock_on_lock_order_inversion() {
    let msg = catches(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            loom::thread::spawn(move || {
                let ga = a.lock().unwrap();
                let gb = b.lock().unwrap();
                drop((ga, gb));
            })
        };
        let gb = b.lock().unwrap();
        let ga = a.lock().unwrap();
        drop((ga, gb));
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "diagnosis was: {msg}");
}

#[test]
fn join_passes_values_and_preemption_bound_zero_is_serial() {
    let report = Builder {
        preemption_bound: Some(0),
        ..Builder::new()
    }
    .check(|| {
        let h = loom::thread::spawn(|| 41usize + 1);
        assert_eq!(h.join().unwrap(), 42);
    });
    // With no preemptions allowed and no blocking, there is exactly one
    // schedule: run-to-completion in spawn order.
    assert!(report.complete);
    assert_eq!(report.iterations, 1);
}

#[test]
fn primitives_work_outside_the_model() {
    // std-fallback path: no execution is active, everything behaves as std.
    let m = Mutex::new(5);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 6);
    let n = AtomicUsize::new(1);
    assert_eq!(n.fetch_add(1, SeqCst), 1);
    let h = loom::thread::spawn(|| 7);
    assert_eq!(h.join().unwrap(), 7);
    let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
    let p2 = std::sync::Arc::clone(&pair);
    let t = loom::thread::spawn(move || {
        let (l, c) = &*p2;
        *l.lock().unwrap() = true;
        c.notify_all();
    });
    let (l, c) = &*pair;
    let mut g = l.lock().unwrap();
    while !*g {
        g = c.wait(g).unwrap();
    }
    drop(g);
    t.join().unwrap();
}
