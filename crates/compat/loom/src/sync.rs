//! Model-aware drop-in replacements for `std::sync` primitives.
//!
//! Inside a [`crate::model()`](fn@crate::model) run every operation is a scheduling point and
//! blocking is virtualised through the execution's scheduler. Outside a
//! model run (no active execution on this thread) every type degrades to a
//! thin wrapper over the corresponding `std::sync` primitive with identical
//! semantics — so code compiled with `--cfg loom` keeps working when it is
//! exercised by ordinary unit tests or binaries.

#![forbid(unsafe_code)]

use crate::rt;
use std::sync::{LockResult, PoisonError, TryLockError};

pub use std::sync::Arc;

pub mod atomic;

fn addr_of<T: ?Sized>(r: &T) -> usize {
    r as *const T as *const () as usize
}

// ---- Mutex ---------------------------------------------------------------

/// A mutual-exclusion lock; `std::sync::Mutex` outside a model run.
///
/// Inside a model run the acquire is a scheduling point and contention is
/// resolved by the scheduler, so every lock-ordering interleaving (up to the
/// preemption bound) is explored. The underlying std mutex is only ever
/// taken uncontended.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releases the model lock (waking blocked threads) and
/// the std lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    std_guard: Option<std::sync::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
    /// Whether this guard was acquired through the model scheduler (and must
    /// therefore release model state on drop).
    modeled: bool,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match rt::current() {
            None => self.wrap(self.inner.lock(), false),
            Some((exec, me)) => {
                let addr = addr_of(self);
                exec.schedule_op(me);
                loop {
                    if exec.try_acquire_mutex(me, addr) {
                        return self.take_std_uncontended();
                    }
                    exec.block_on_mutex(me, addr);
                }
            }
        }
    }

    pub fn try_lock(&self) -> std::sync::TryLockResult<MutexGuard<'_, T>> {
        match rt::current() {
            None => match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    std_guard: Some(g),
                    mutex: self,
                    modeled: false,
                }),
                Err(TryLockError::Poisoned(p)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        std_guard: Some(p.into_inner()),
                        mutex: self,
                        modeled: false,
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            },
            Some((exec, me)) => {
                exec.schedule_op(me);
                if exec.try_acquire_mutex(me, addr_of(self)) {
                    self.take_std_uncontended().map_err(TryLockError::Poisoned)
                } else {
                    Err(TryLockError::WouldBlock)
                }
            }
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }

    /// Takes the std lock after the model has granted ownership: guaranteed
    /// uncontended (modulo poison, which is propagated like std).
    fn take_std_uncontended(&self) -> LockResult<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => self.wrap(Ok(g), true),
            Err(TryLockError::Poisoned(p)) => {
                self.wrap(Err(PoisonError::new(p.into_inner())), true)
            }
            Err(TryLockError::WouldBlock) => {
                unreachable!("loom internal error: std mutex contended while model lock held")
            }
        }
    }

    fn wrap<'a>(
        &'a self,
        res: LockResult<std::sync::MutexGuard<'a, T>>,
        modeled: bool,
    ) -> LockResult<MutexGuard<'a, T>> {
        match res {
            Ok(g) => Ok(MutexGuard {
                std_guard: Some(g),
                mutex: self,
                modeled,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                std_guard: Some(p.into_inner()),
                mutex: self,
                modeled,
            })),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std_guard.as_ref().expect("guard dismantled")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std_guard.as_mut().expect("guard dismantled")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock first so a model wakeup can never observe a
        // physically held mutex. Safe during unwind: release_mutex neither
        // panics nor schedules.
        drop(self.std_guard.take());
        if self.modeled {
            if let Some((exec, me)) = rt::current() {
                exec.release_mutex(me, addr_of(self.mutex));
            }
        }
    }
}

// ---- Condvar -------------------------------------------------------------

/// A condition variable; `std::sync::Condvar` outside a model run.
///
/// Inside a model run waits and notifies are scheduling points, waiter
/// queues are explicit, and a notify with no registered waiter is lost —
/// exactly the semantics that make lost-wakeup bugs reachable states.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mutex = guard.mutex;
        match rt::current() {
            None => {
                let std_guard = guard.std_guard.take().expect("guard dismantled");
                drop(guard); // inert: std_guard taken, guard was not modeled
                match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        std_guard: Some(g),
                        mutex,
                        modeled: false,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        std_guard: Some(p.into_inner()),
                        mutex,
                        modeled: false,
                    })),
                }
            }
            Some((exec, me)) => {
                // Physically unlock while still the active thread (no other
                // thread can run until we schedule away below), then
                // atomically register as a waiter + release the model lock +
                // schedule away. Neutralise the guard so its Drop does not
                // release the model lock a second time.
                drop(guard.std_guard.take());
                guard.modeled = false;
                drop(guard);
                let mutex_addr = addr_of(mutex);
                exec.condvar_wait(me, addr_of(self), mutex_addr);
                // Woken and scheduled: reacquire through the model. The
                // wakeup→reacquire window is a real race window, explored
                // because block/retry are scheduling points.
                loop {
                    if exec.try_acquire_mutex(me, mutex_addr) {
                        return mutex.take_std_uncontended();
                    }
                    exec.block_on_mutex(me, mutex_addr);
                }
            }
        }
    }

    /// `wait_while` in terms of [`Condvar::wait`], mirroring std.
    pub fn wait_while<'a, T, F: FnMut(&mut T) -> bool>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> LockResult<MutexGuard<'a, T>> {
        while condition(&mut guard) {
            guard = self.wait(guard)?;
        }
        Ok(guard)
    }

    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, std::sync::WaitTimeoutResult)> {
        match rt::current() {
            None => {
                let mutex = guard.mutex;
                let std_guard = guard.std_guard.take().expect("guard dismantled");
                guard.modeled = false;
                drop(guard);
                match self.inner.wait_timeout(std_guard, dur) {
                    Ok((g, t)) => Ok((
                        MutexGuard {
                            std_guard: Some(g),
                            mutex,
                            modeled: false,
                        },
                        t,
                    )),
                    Err(p) => {
                        let (g, t) = p.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                std_guard: Some(g),
                                mutex,
                                modeled: false,
                            },
                            t,
                        )))
                    }
                }
            }
            // Under the model time does not pass: a timed wait is modelled as
            // an untimed wait that never reports a timeout. Code whose
            // *correctness* (not liveness) depends on a timeout firing is
            // outside the modelled invariants by design.
            Some(_) => match self.wait(guard) {
                Ok(g) => Ok((g, fabricate_no_timeout())),
                Err(p) => Err(PoisonError::new((p.into_inner(), fabricate_no_timeout()))),
            },
        }
    }

    pub fn notify_one(&self) {
        match rt::current() {
            None => self.inner.notify_one(),
            Some((exec, me)) => exec.notify(me, addr_of(self), false),
        }
    }

    pub fn notify_all(&self) {
        match rt::current() {
            None => self.inner.notify_all(),
            Some((exec, me)) => exec.notify(me, addr_of(self), true),
        }
    }
}

/// Manufactures a `WaitTimeoutResult` that reports "did not time out". std
/// exposes no constructor, so derive one from a real zero-duration wait where
/// the condvar is pre-notified; only used on the model path, where the
/// scheduler already decided the wakeup genuinely happened.
fn fabricate_no_timeout() -> std::sync::WaitTimeoutResult {
    let m = std::sync::Mutex::new(());
    let cv = std::sync::Condvar::new();
    let g = m.lock().unwrap();
    // A zero wait may or may not be flagged as timed out by the platform; we
    // only need *a* value and callers on the model path must not branch on
    // it for correctness (documented above).
    let (guard, t) = cv
        .wait_timeout(g, std::time::Duration::from_millis(0))
        .unwrap();
    drop(guard);
    t
}

// ---- RwLock (outside-model passthrough) ----------------------------------

/// Passthrough `std::sync::RwLock`. The workspace's model suites do not
/// exercise reader-writer locks (the fitness shard maps are not part of the
/// modelled claim protocols), so under the model this is *not*
/// schedule-explored — it delegates to std. Kept so `loom::sync` stays a
/// drop-in module path.
pub use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
