//! Model-aware `std::thread` subset: `spawn`, `JoinHandle`, `yield_now`.
//!
//! Inside a model run, spawned closures become model threads scheduled by
//! the execution; outside one they are real `std::thread::spawn` threads.

use crate::rt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Handle to a spawned thread; `join` returns the closure's result exactly
/// like `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    imp: Imp<T>,
}

enum Imp<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<rt::Execution>,
        id: usize,
        result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    },
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.imp {
            Imp::Std(h) => h.join(),
            Imp::Model { exec, id, result } => {
                let (_, me) = rt::current().expect("model JoinHandle joined outside the model");
                exec.join_thread(me, id);
                result
                    .lock()
                    .unwrap()
                    .take()
                    .expect("loom internal error: joined thread left no result")
            }
        }
    }
}

/// Spawns a thread. On a model thread the child joins the current
/// execution's schedule exploration; the spawn itself is a scheduling point
/// (the child may run before the parent's next operation).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => JoinHandle {
            imp: Imp::Std(std::thread::spawn(f)),
        },
        Some((exec, me)) => {
            let id = exec.register_thread();
            let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
            let result2 = Arc::clone(&result);
            let exec2 = Arc::clone(&exec);
            let os = std::thread::Builder::new()
                .name(format!("loom-model-{id}"))
                .spawn(move || {
                    rt::set_current(Arc::clone(&exec2), id);
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        exec2.wait_initial(id);
                        f()
                    }));
                    match outcome {
                        Ok(v) => {
                            *result2.lock().unwrap() = Some(Ok(v));
                            exec2.finish_thread(id);
                        }
                        Err(p) if p.is::<rt::IterationAbort>() => {
                            // Teardown in progress: just get out of the way.
                            exec2.finish_thread(id);
                        }
                        Err(p) => {
                            // A real panic in a model thread fails the whole
                            // model immediately (loom semantics) — it is
                            // never deferred to join().
                            exec2.thread_panicked(id, p);
                        }
                    }
                    rt::clear_current();
                    exec2.thread_exited();
                })
                .expect("failed to spawn model thread");
            exec.store_handle(os);
            exec.schedule_op(me);
            JoinHandle {
                imp: Imp::Model { exec, id, result },
            }
        }
    }
}

/// Yields. Under the model the calling thread is descheduled until another
/// thread has been scheduled once — this is what makes bounded spin-wait
/// loops (e.g. a hazard-cell drain) explorable without livelock.
pub fn yield_now() {
    match rt::current() {
        None => std::thread::yield_now(),
        Some((exec, me)) => exec.yield_now(me),
    }
}
