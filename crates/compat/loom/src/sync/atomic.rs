//! Model-aware atomics. Every operation is a scheduling point inside a
//! model run; outside one they delegate straight to `std::sync::atomic`.
//!
//! The model treats all atomics as sequentially consistent regardless of the
//! `Ordering` argument — a sound over-approximation for detecting the
//! workspace's invariant violations, all of which are already expressed
//! against `SeqCst` code. `fetch_update` is implemented as the documented
//! load/compare-exchange loop so the model explores CAS-retry interleavings.

#![forbid(unsafe_code)]

use crate::rt;
use std::sync::atomic::Ordering::SeqCst;

pub use std::sync::atomic::Ordering;

fn schedule_point() {
    if let Some((exec, me)) = rt::current() {
        exec.schedule_op(me);
    }
}

macro_rules! atomic_int {
    ($name:ident, $std:ty, $prim:ty) => {
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            pub const fn new(v: $prim) -> $name {
                $name {
                    inner: <$std>::new(v),
                }
            }

            pub fn load(&self, _order: Ordering) -> $prim {
                schedule_point();
                self.inner.load(SeqCst)
            }

            pub fn store(&self, v: $prim, _order: Ordering) {
                schedule_point();
                self.inner.store(v, SeqCst);
            }

            pub fn swap(&self, v: $prim, _order: Ordering) -> $prim {
                schedule_point();
                self.inner.swap(v, SeqCst)
            }

            pub fn fetch_add(&self, v: $prim, _order: Ordering) -> $prim {
                schedule_point();
                self.inner.fetch_add(v, SeqCst)
            }

            pub fn fetch_sub(&self, v: $prim, _order: Ordering) -> $prim {
                schedule_point();
                self.inner.fetch_sub(v, SeqCst)
            }

            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$prim, $prim> {
                schedule_point();
                self.inner.compare_exchange(current, new, SeqCst, SeqCst)
            }

            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                // The model never fails spuriously: weak == strong here.
                self.compare_exchange(current, new, success, failure)
            }

            /// The documented load + compare-exchange loop. Each retry is a
            /// separate scheduling point, so interleavings where a rival
            /// changes the value mid-update are explored.
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                mut f: F,
            ) -> Result<$prim, $prim>
            where
                F: FnMut($prim) -> Option<$prim>,
            {
                let mut prev = self.load(fetch_order);
                while let Some(next) = f(prev) {
                    match self.compare_exchange_weak(prev, next, set_order, fetch_order) {
                        Ok(x) => return Ok(x),
                        Err(actual) => prev = actual,
                    }
                }
                Err(prev)
            }

            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> $name {
                $name::new(v)
            }
        }
    };
}

atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
atomic_int!(AtomicI64, std::sync::atomic::AtomicI64, i64);

/// Model-aware `AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    pub fn load(&self, _order: Ordering) -> bool {
        schedule_point();
        self.inner.load(SeqCst)
    }

    pub fn store(&self, v: bool, _order: Ordering) {
        schedule_point();
        self.inner.store(v, SeqCst);
    }

    pub fn swap(&self, v: bool, _order: Ordering) -> bool {
        schedule_point();
        self.inner.swap(v, SeqCst)
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        schedule_point();
        self.inner.compare_exchange(current, new, SeqCst, SeqCst)
    }

    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }
}

/// Model-aware `AtomicPtr`.
#[derive(Debug)]
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    pub const fn new(p: *mut T) -> AtomicPtr<T> {
        AtomicPtr {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    pub fn load(&self, _order: Ordering) -> *mut T {
        schedule_point();
        self.inner.load(SeqCst)
    }

    pub fn store(&self, p: *mut T, _order: Ordering) {
        schedule_point();
        self.inner.store(p, SeqCst);
    }

    pub fn swap(&self, p: *mut T, _order: Ordering) -> *mut T {
        schedule_point();
        self.inner.swap(p, SeqCst)
    }

    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        schedule_point();
        self.inner.compare_exchange(current, new, SeqCst, SeqCst)
    }

    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> *mut T {
        self.inner.into_inner()
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> AtomicPtr<T> {
        AtomicPtr::new(std::ptr::null_mut())
    }
}
