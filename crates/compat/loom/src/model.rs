//! The exploration driver: iterate the checked closure under every schedule
//! reachable within the configured bounds.

use crate::rt::{Choice, Execution, Failure, IterationAbort};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Exploration configuration.
///
/// The defaults bound the search the way CHESS does: depth-first over
/// scheduling decisions with at most [`Builder::preemption_bound`]
/// *involuntary* context switches per execution (forced switches at blocking
/// points are free). Empirically almost all real concurrency bugs manifest
/// within two preemptions, so `Some(2)` gives high coverage at a tiny
/// fraction of the unbounded tree; set `None` for exhaustive exploration of
/// small models.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum involuntary preemptions per execution; `None` = unbounded.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules; exploration stops (incomplete) once
    /// reached. Guards CI time, not correctness.
    pub max_iterations: usize,
    /// Hard cap on scheduling decisions within one execution; exceeding it
    /// is reported as a livelock.
    pub max_branches: usize,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder::new()
    }
}

/// What an exploration did. Returned by [`Builder::check`] so suites can
/// assert both that invariants held *and* that the space was fully covered.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub iterations: usize,
    /// `true` if the bounded schedule space was exhausted; `false` if the
    /// iteration cap stopped exploration early.
    pub complete: bool,
}

impl Builder {
    pub fn new() -> Builder {
        Builder {
            preemption_bound: Some(2),
            max_iterations: 50_000,
            max_branches: 5_000,
        }
    }

    /// Runs `f` under every schedule within the bounds. Panics (re-raising
    /// the closure's own panic, or a deadlock/livelock diagnosis with the
    /// offending schedule prefix) on the first failing schedule.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(
            crate::rt_current_is_none(),
            "loom::model may not be nested inside a model run"
        );
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut path: Vec<Choice> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            let exec = Execution::new(path, self.preemption_bound, self.max_branches);
            run_iteration(&exec, Arc::clone(&f));
            let digest = exec.schedule_digest();
            let (recorded, failure) = exec.into_outcome();
            match failure {
                Some(Failure::Panic(payload)) => {
                    eprintln!(
                        "loom: schedule {digest} failed after {iterations} \
                         iteration(s); re-raising the model thread's panic"
                    );
                    std::panic::resume_unwind(payload);
                }
                Some(Failure::Deadlock(msg)) | Some(Failure::Livelock(msg)) => {
                    panic!("loom: {msg} (schedule {digest}, iteration {iterations})");
                }
                None => {}
            }
            path = recorded;
            if !advance(&mut path) {
                return Report {
                    iterations,
                    complete: true,
                };
            }
            if iterations >= self.max_iterations {
                eprintln!(
                    "loom: iteration cap {} reached before exhausting the \
                     schedule space; exploration is incomplete",
                    self.max_iterations
                );
                return Report {
                    iterations,
                    complete: false,
                };
            }
        }
    }
}

/// Runs one schedule: spawn the root model thread, wait for the execution to
/// quiesce (all model threads exited, normally or via teardown), reap OS
/// threads.
fn run_iteration(exec: &Arc<Execution>, f: Arc<dyn Fn() + Send + Sync>) {
    let exec2 = Arc::clone(exec);
    let root = std::thread::Builder::new()
        .name("loom-model-0".to_owned())
        .spawn(move || {
            crate::rt::set_current(Arc::clone(&exec2), 0);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                exec2.wait_initial(0);
                f();
            }));
            match outcome {
                Ok(()) => exec2.finish_thread(0),
                Err(p) if p.is::<IterationAbort>() => exec2.finish_thread(0),
                Err(p) => exec2.thread_panicked(0, p),
            }
            crate::rt::clear_current();
            exec2.thread_exited();
        })
        .expect("failed to spawn model root thread");
    exec.store_handle(root);
    exec.wait_quiesced();
    exec.join_os_threads();
}

/// Depth-first advance: back up to the deepest decision with an untried
/// alternative, take it, and truncate the suffix. Returns `false` when the
/// whole (bounded) tree has been explored.
fn advance(path: &mut Vec<Choice>) -> bool {
    while let Some(mut choice) = path.pop() {
        if !choice.untried.is_empty() {
            let next = choice.untried.remove(0);
            path.push(Choice {
                chosen: next,
                untried: choice.untried,
            });
            return true;
        }
    }
    false
}
