//! The execution runtime: cooperative scheduling of real OS threads.
//!
//! One [`Execution`] lives for one iteration of the model. Every model
//! thread (including the root closure) runs on a real OS thread, but at most
//! one is ever *active*: all others are parked on the execution's condvar
//! waiting for their turn. Control transfers only at *scheduling points* —
//! every atomic operation, mutex acquire, condvar wait/notify, spawn, join
//! and yield. Between two scheduling points a thread runs uninterrupted, so
//! an interleaving is fully described by the sequence of scheduling
//! decisions, which the driver records as a path of [`Choice`]s and replays
//! and extends depth-first.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// One scheduling decision: which thread was chosen, and which enabled
/// alternatives have not been explored yet at this point of the tree.
#[derive(Debug, Clone)]
pub(crate) struct Choice {
    pub(crate) chosen: usize,
    pub(crate) untried: Vec<usize>,
}

/// Why an iteration was torn down early.
pub(crate) enum Failure {
    /// A model thread panicked with this payload (assertion failure in the
    /// checked closure). The driver re-raises it.
    Panic(Box<dyn std::any::Any + Send + 'static>),
    /// No thread can make progress but not all threads have finished.
    Deadlock(String),
    /// The execution exceeded the branch cap — almost always a spin loop
    /// that never becomes disabled (livelock under the modelled schedules).
    Livelock(String),
}

/// Sentinel panic payload used to unwind model threads when an iteration
/// aborts (deadlock, livelock, or another thread's panic). Never shown to
/// the user; the thread wrapper catches it.
pub(crate) struct IterationAbort;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Eligible to be scheduled.
    Runnable,
    /// Called `yield_now`: not eligible until some *other* thread has been
    /// scheduled once (this is what bounds spin-wait loops).
    Yielded,
    /// Waiting to acquire the mutex identified by this address.
    BlockedMutex(usize),
    /// Waiting on the condvar identified by this address.
    BlockedCondvar(usize),
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    Finished,
}

struct ExecState {
    statuses: Vec<Status>,
    active: usize,
    /// Recorded/replayed schedule. `cursor` is the next decision index; while
    /// `cursor < path.len()` we are replaying a prefix from a prior iteration.
    path: Vec<Choice>,
    cursor: usize,
    preemptions: usize,
    /// Model state of every `loom::sync::Mutex` touched this iteration,
    /// keyed by address: the id of the holding thread, if any.
    mutex_holders: HashMap<usize, Option<usize>>,
    /// FIFO waiter queues per condvar address.
    cv_waiters: HashMap<usize, Vec<usize>>,
    failure: Option<Failure>,
    done: bool,
    /// Number of model threads whose OS wrapper has fully exited. The driver
    /// waits for this to reach `statuses.len()` before joining handles.
    exited: usize,
}

pub(crate) struct Execution {
    state: Mutex<ExecState>,
    /// Woken on every scheduling decision and on teardown; model threads and
    /// the driver all wait here.
    turn: Condvar,
    preemption_bound: Option<usize>,
    max_branches: usize,
    /// OS handles of spawned model threads, joined by the driver at teardown.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Execution {
    pub(crate) fn new(
        path: Vec<Choice>,
        preemption_bound: Option<usize>,
        max_branches: usize,
    ) -> Arc<Execution> {
        Arc::new(Execution {
            state: Mutex::new(ExecState {
                statuses: vec![Status::Runnable], // thread 0 = root closure
                active: 0,
                path,
                cursor: 0,
                preemptions: 0,
                mutex_holders: HashMap::new(),
                cv_waiters: HashMap::new(),
                failure: None,
                done: false,
                exited: 0,
            }),
            turn: Condvar::new(),
            preemption_bound,
            max_branches,
            handles: Mutex::new(Vec::new()),
        })
    }

    // ---- scheduling core -------------------------------------------------

    /// Picks the next active thread. Must be called with the state lock held
    /// and with `me`'s status already updated for this decision. Returns
    /// `false` if no thread can run (deadlock recorded, unless all finished).
    fn pick_next(&self, st: &mut ExecState, me: usize) -> bool {
        let runnable: Vec<usize> = (0..st.statuses.len())
            .filter(|&t| st.statuses[t] == Status::Runnable)
            .collect();
        let yielded: Vec<usize> = (0..st.statuses.len())
            .filter(|&t| st.statuses[t] == Status::Yielded)
            .collect();
        // A yielded thread is only eligible when nothing else is runnable:
        // yielding means "let someone else go first if anyone can".
        let candidates = if runnable.is_empty() {
            &yielded
        } else {
            &runnable
        };
        if candidates.is_empty() {
            if st.statuses.iter().all(|&s| s == Status::Finished) {
                st.done = true;
            } else {
                let snapshot: Vec<String> = st
                    .statuses
                    .iter()
                    .enumerate()
                    .map(|(t, s)| format!("thread {t}: {s:?}"))
                    .collect();
                st.failure = Some(Failure::Deadlock(format!(
                    "deadlock: no runnable thread ({})",
                    snapshot.join(", ")
                )));
            }
            return false;
        }

        let chosen = if st.cursor < st.path.len() {
            let c = st.path[st.cursor].chosen;
            assert!(
                candidates.contains(&c),
                "loom internal error: schedule replay diverged (thread {c} not \
                 enabled at decision {}; checked closure must be deterministic \
                 apart from scheduling)",
                st.cursor
            );
            c
        } else {
            if st.path.len() >= self.max_branches {
                st.failure = Some(Failure::Livelock(format!(
                    "livelock: execution exceeded {} scheduling decisions \
                     without terminating",
                    self.max_branches
                )));
                return false;
            }
            // Deterministic order: the current thread first (run-to-block
            // default keeps paths short), then ascending thread id.
            let mut order = candidates.clone();
            order.sort_unstable();
            if let Some(pos) = order.iter().position(|&t| t == me) {
                order.remove(pos);
                order.insert(0, me);
            }
            // Preemption bound: once the budget is spent, a thread that is
            // still enabled at its own scheduling point must keep running —
            // we only branch on forced switches (me disabled).
            let me_enabled = order.first() == Some(&me);
            if me_enabled && self.preemption_bound.is_some_and(|b| st.preemptions >= b) {
                order.truncate(1);
            }
            let chosen = order[0];
            st.path.push(Choice {
                chosen,
                untried: order[1..].to_vec(),
            });
            chosen
        };
        st.cursor += 1;
        // A preemption is an involuntary switch away from a thread that was
        // still enabled at its own scheduling point. Yields and blocking
        // switches are voluntary/forced and cost nothing.
        if chosen != me && st.statuses[me] == Status::Runnable {
            st.preemptions += 1;
        }
        // Every yielded thread other than the chosen one has now "let one
        // decision pass" and becomes eligible again.
        for t in 0..st.statuses.len() {
            if t != chosen && st.statuses[t] == Status::Yielded {
                st.statuses[t] = Status::Runnable;
            }
        }
        if st.statuses[chosen] == Status::Yielded {
            st.statuses[chosen] = Status::Runnable;
        }
        st.active = chosen;
        true
    }

    /// Parks until `me` is the active runnable thread. Panics with
    /// [`IterationAbort`] if the iteration is being torn down.
    fn wait_for_turn(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.failure.is_some() {
                drop(st);
                std::panic::panic_any(IterationAbort);
            }
            if st.active == me && st.statuses[me] == Status::Runnable {
                return;
            }
            st = self.turn.wait(st).unwrap();
        }
    }

    /// A full scheduling point: set `me`'s status, pick the next thread,
    /// and park until scheduled again.
    fn reschedule(&self, me: usize, status: Status) {
        {
            let mut st = self.state.lock().unwrap();
            if st.failure.is_some() {
                drop(st);
                std::panic::panic_any(IterationAbort);
            }
            st.statuses[me] = status;
            self.pick_next(&mut st, me);
            self.turn.notify_all();
        }
        self.wait_for_turn(me);
    }

    /// Scheduling point before an atomic / lock-acquire / notify operation:
    /// the thread stays runnable, but any other enabled thread may be
    /// scheduled first.
    pub(crate) fn schedule_op(&self, me: usize) {
        self.reschedule(me, Status::Runnable);
    }

    pub(crate) fn yield_now(&self, me: usize) {
        self.reschedule(me, Status::Yielded);
    }

    // ---- mutexes ---------------------------------------------------------

    /// Attempts to acquire the model mutex at `addr`. On success the caller
    /// may take the underlying std lock (guaranteed uncontended). On failure
    /// the caller blocks via [`Execution::block_on_mutex`] and retries.
    pub(crate) fn try_acquire_mutex(&self, me: usize, addr: usize) -> bool {
        let mut st = self.state.lock().unwrap();
        let holder = st.mutex_holders.entry(addr).or_insert(None);
        match holder {
            None => {
                *holder = Some(me);
                true
            }
            Some(_) => false,
        }
    }

    pub(crate) fn block_on_mutex(&self, me: usize, addr: usize) {
        self.reschedule(me, Status::BlockedMutex(addr));
    }

    /// Releases the model mutex and wakes every thread blocked on it (they
    /// race for it at their next turn, like real wakeups). Not a scheduling
    /// point: a release merges with the releasing thread's next operation,
    /// which is sound because model state is only observed at operations.
    pub(crate) fn release_mutex(&self, _me: usize, addr: usize) {
        let mut st = self.state.lock().unwrap();
        st.mutex_holders.insert(addr, None);
        for t in 0..st.statuses.len() {
            if st.statuses[t] == Status::BlockedMutex(addr) {
                st.statuses[t] = Status::Runnable;
            }
        }
        self.turn.notify_all();
    }

    // ---- condvars --------------------------------------------------------

    /// Atomically: registers `me` on the condvar's waiter queue, releases the
    /// model mutex, and schedules away. The caller must have physically
    /// unlocked the std mutex first (it is still the active thread, so no
    /// other thread can race the window) and reacquires it on return.
    pub(crate) fn condvar_wait(&self, me: usize, cv_addr: usize, mutex_addr: usize) {
        {
            let mut st = self.state.lock().unwrap();
            if st.failure.is_some() {
                drop(st);
                std::panic::panic_any(IterationAbort);
            }
            st.cv_waiters.entry(cv_addr).or_default().push(me);
            st.statuses[me] = Status::BlockedCondvar(cv_addr);
            st.mutex_holders.insert(mutex_addr, None);
            for t in 0..st.statuses.len() {
                if st.statuses[t] == Status::BlockedMutex(mutex_addr) {
                    st.statuses[t] = Status::Runnable;
                }
            }
            self.pick_next(&mut st, me);
            self.turn.notify_all();
        }
        self.wait_for_turn(me);
    }

    /// `notify_one` / `notify_all`. The notify itself is a scheduling point
    /// (so the model explores notify-before-wait orderings); a wakeup with no
    /// waiter is lost, exactly like the real primitive.
    pub(crate) fn notify(&self, me: usize, cv_addr: usize, all: bool) {
        self.schedule_op(me);
        let mut st = self.state.lock().unwrap();
        let waiters = st.cv_waiters.entry(cv_addr).or_default();
        let woken: Vec<usize> = if all {
            std::mem::take(waiters)
        } else if waiters.is_empty() {
            Vec::new()
        } else {
            vec![waiters.remove(0)]
        };
        for t in woken {
            st.statuses[t] = Status::Runnable;
        }
        self.turn.notify_all();
    }

    // ---- threads ---------------------------------------------------------

    /// Registers a new model thread (status runnable) and returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.statuses.push(Status::Runnable);
        st.statuses.len() - 1
    }

    pub(crate) fn store_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles.lock().unwrap().push(h);
    }

    /// Entry point of a freshly spawned model thread: park until first
    /// scheduled.
    pub(crate) fn wait_initial(&self, me: usize) {
        self.wait_for_turn(me);
    }

    /// Blocks until `target` finishes.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        loop {
            {
                let st = self.state.lock().unwrap();
                if st.failure.is_some() {
                    drop(st);
                    std::panic::panic_any(IterationAbort);
                }
                if st.statuses[target] == Status::Finished {
                    return;
                }
            }
            self.reschedule(me, Status::BlockedJoin(target));
        }
    }

    /// Marks `me` finished, wakes joiners, hands off the schedule. Never
    /// panics (safe to call from an unwinding wrapper).
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        st.statuses[me] = Status::Finished;
        for t in 0..st.statuses.len() {
            if st.statuses[t] == Status::BlockedJoin(me) {
                st.statuses[t] = Status::Runnable;
            }
        }
        if st.failure.is_none() {
            self.pick_next(&mut st, me);
        }
        self.turn.notify_all();
    }

    /// Records a user panic (first one wins) and begins teardown.
    pub(crate) fn thread_panicked(
        &self,
        me: usize,
        payload: Box<dyn std::any::Any + Send + 'static>,
    ) {
        let mut st = self.state.lock().unwrap();
        st.statuses[me] = Status::Finished;
        if st.failure.is_none() {
            st.failure = Some(Failure::Panic(payload));
        }
        self.turn.notify_all();
    }

    /// Called by every thread wrapper as its very last act.
    pub(crate) fn thread_exited(&self) {
        let mut st = self.state.lock().unwrap();
        st.exited += 1;
        self.turn.notify_all();
    }

    // ---- driver side -----------------------------------------------------

    /// Blocks the driver until the iteration has fully quiesced: every model
    /// thread's wrapper has exited (normally or via [`IterationAbort`]).
    pub(crate) fn wait_quiesced(&self) {
        let mut st = self.state.lock().unwrap();
        while !((st.done || st.failure.is_some()) && st.exited == st.statuses.len()) {
            st = self.turn.wait(st).unwrap();
        }
    }

    /// Joins all OS threads; call after [`Execution::wait_quiesced`].
    pub(crate) fn join_os_threads(&self) {
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }

    /// Tears the iteration apart: the recorded schedule and the failure, if
    /// any.
    pub(crate) fn into_outcome(self: Arc<Self>) -> (Vec<Choice>, Option<Failure>) {
        let exec = Arc::try_unwrap(self)
            .unwrap_or_else(|_| panic!("loom internal error: execution still shared at teardown"));
        let st = exec.state.into_inner().unwrap();
        (st.path, st.failure)
    }

    /// Renders the schedule prefix for failure messages.
    pub(crate) fn schedule_digest(&self) -> String {
        let st = self.state.lock().unwrap();
        let ids: Vec<String> = st.path.iter().map(|c| c.chosen.to_string()).collect();
        format!("[{}]", ids.join(", "))
    }
}

// ---- thread-local current execution -------------------------------------

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The execution/thread-id pair for the calling thread, if it is a model
/// thread of an active `loom::model` run. All primitives consult this to
/// decide between modelled and plain-std behaviour.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(exec: Arc<Execution>, id: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec, id)));
}

pub(crate) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}
