//! Offline, API-compatible subset of [loom](https://docs.rs/loom):
//! deterministic schedule exploration for the workspace's hand-rolled
//! concurrency core.
//!
//! # What this is
//!
//! The workspace's bit-determinism contract rests on a few small, load-
//! bearing concurrency protocols: the work-stealing pool's sleeper
//! park/unpark, the fitness caches' claim/publish/wait/abandon protocol, the
//! `Param` transpose hazard cell, the `SharedBudget` CAS cap and the
//! portfolio's `CancelToken` winner election. Stress tests exercise those
//! paths but cannot prove the absence of races. This crate provides a model
//! checker that *can*, within explicit bounds: the protocol is rebuilt on
//! `loom::sync` / `loom::thread` primitives (via `cfg(loom)` type aliases in
//! the production crates) and [`model()`](fn@model) executes the test closure under
//! every schedule reachable within a preemption bound, asserting invariants
//! on each.
//!
//! # How it works
//!
//! Each model thread runs on a real OS thread, but the runtime keeps exactly
//! one *active* at a time; the rest are parked on a condvar. Control
//! transfers only at scheduling points — every atomic op, mutex acquire,
//! condvar wait/notify, spawn, join, and yield — so between points a thread
//! runs atomically and an interleaving is fully described by the sequence of
//! scheduling decisions. The driver records that sequence, then backtracks
//! depth-first: rerun the prefix, take the next untried branch, repeat until
//! the bounded tree is exhausted (see [`model::Builder`] for the bounds and
//! the CHESS-style preemption budget). Deadlocks (no runnable thread),
//! livelocks (decision cap exceeded) and assertion panics are reported with
//! the offending schedule prefix; an iteration is then torn down by
//! unwinding every model thread.
//!
//! # Outside a model
//!
//! Every primitive degrades to its `std::sync` counterpart when the calling
//! thread is not part of an active model run. This keeps `--cfg loom` builds
//! of the production crates fully functional — ordinary unit tests, build
//! scripts and binaries behave identically — so the model-check CI job can
//! compile whole crates with the cfg enabled and run only the `*_model`
//! suites under exploration.
//!
//! # Supported API
//!
//! - `loom::sync::{Arc, Mutex, MutexGuard, Condvar, RwLock*}` (`RwLock` is a
//!   passthrough, not schedule-explored)
//! - `loom::sync::atomic::{AtomicBool, AtomicUsize, AtomicU32, AtomicU64,
//!   AtomicI64, AtomicPtr, Ordering}` — all orderings are modelled as SeqCst
//! - `loom::thread::{spawn, JoinHandle, yield_now}`
//! - [`model()`] / [`model::Builder`] returning a [`model::Report`]
//!
//! Unsupported loom features (deliberately): `loom::cell`, `loom::lazy_static`,
//! `SeqCst`-vs-weak-memory modelling, spurious condvar wakeups.

pub mod model;
pub(crate) mod rt;
pub mod sync;
pub mod thread;

pub mod hint {
    /// Spin-loop hint: a yield under the model (so spins are explorable),
    /// the real hint outside it.
    pub fn spin_loop() {
        match crate::rt_current_is_none() {
            true => std::hint::spin_loop(),
            false => crate::thread::yield_now(),
        }
    }
}

/// Checks `f` under the default exploration bounds. See [`model::Builder`]
/// to configure bounds and to receive a coverage [`model::Report`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model::Builder::new().check(f);
}

/// `true` when the calling thread is not a model thread.
pub(crate) fn rt_current_is_none() -> bool {
    rt::current().is_none()
}
