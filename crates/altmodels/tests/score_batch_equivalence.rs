//! The alternative fitness models carry the same batching contract as the
//! primary ones: `score_batch` must return exactly (bit-identically) what
//! per-candidate `score` returns, for every model family in this crate.

use netsyn_altmodels::bigram::{train_bigram_model, BigramTrainerConfig};
use netsyn_altmodels::ranking::{train_ranking_model, RankingTrainerConfig};
use netsyn_altmodels::regression::{train_regression_model, RegressionTrainerConfig};
use netsyn_altmodels::twotier::{train_two_tier_model, TwoTierTrainerConfig};
use netsyn_altmodels::{BigramFitness, RankingFitness, RegressionFitness, TwoTierFitness};
use netsyn_dsl::{Generator, GeneratorConfig, IoSpec, Program};
use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig, FitnessSample};
use netsyn_fitness::{ClosenessMetric, FitnessFunction};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const LENGTH: usize = 3;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn tiny_dataset(seed: u64) -> Vec<FitnessSample> {
    let mut config = DatasetConfig::for_length(LENGTH);
    config.num_target_programs = 6;
    config.examples_per_program = 2;
    generate_dataset(&config, BalanceMetric::CommonFunctions, &mut rng(seed)).unwrap()
}

fn scenario(seed: u64) -> (IoSpec, Vec<Program>) {
    let mut r = rng(seed);
    let generator = Generator::new(GeneratorConfig::for_length(LENGTH));
    let task = generator.task(2, &mut r).unwrap();
    let mut candidates: Vec<Program> = (0..20).map(|_| generator.random_program(&mut r)).collect();
    candidates.push(candidates[0].clone());
    candidates.push(Program::default());
    (task.spec, candidates)
}

fn assert_batch_matches_single<F: FitnessFunction>(fitness: &F, seed: u64) {
    let (spec, candidates) = scenario(seed);
    let batched = fitness.score_batch(&candidates, &spec);
    assert_eq!(batched.len(), candidates.len());
    for (candidate, &batch_score) in candidates.iter().zip(batched.iter()) {
        let single = fitness.score(candidate, &spec);
        assert_eq!(
            batch_score.to_bits(),
            single.to_bits(),
            "{}: batched {batch_score} != single {single}",
            fitness.name()
        );
    }
    assert!(fitness.score_batch(&[], &spec).is_empty());
}

#[test]
fn regression_score_batch_is_bit_identical() {
    let samples = tiny_dataset(1);
    let model = train_regression_model(
        ClosenessMetric::CommonFunctions,
        &samples,
        LENGTH,
        &RegressionTrainerConfig::tiny(),
        &mut rng(2),
    );
    assert_batch_matches_single(&RegressionFitness::new(model), 10);
}

#[test]
fn two_tier_score_batch_is_bit_identical() {
    let samples = tiny_dataset(3);
    let model = train_two_tier_model(
        ClosenessMetric::CommonFunctions,
        &samples,
        LENGTH,
        &TwoTierTrainerConfig::tiny(),
        &mut rng(4),
    );
    assert_batch_matches_single(&TwoTierFitness::new(model), 11);
}

#[test]
fn ranking_score_batch_is_bit_identical() {
    let samples = tiny_dataset(5);
    let model = train_ranking_model(
        ClosenessMetric::CommonFunctions,
        &samples,
        LENGTH,
        &RankingTrainerConfig::tiny(),
        &mut rng(6),
    );
    assert_batch_matches_single(&RankingFitness::new(model), 12);
}

#[test]
fn bigram_score_batch_is_bit_identical() {
    let samples = tiny_dataset(7);
    let model = train_bigram_model(&samples, LENGTH, &BigramTrainerConfig::tiny(), &mut rng(8));
    let map = model.bigram_map(&samples[0].spec);
    assert_batch_matches_single(&BigramFitness::new(map, LENGTH), 13);
}

/// The comparison tooling consumes `score_batch` output; a quality report
/// built from batched scores must equal one computed from per-candidate
/// scores exactly (the Spearman correlation is rank-based, so even a
/// last-ulp difference could flip it).
#[test]
fn comparison_report_matches_per_candidate_scoring() {
    use netsyn_altmodels::comparison::{spearman_rank_correlation, FitnessQualityReport};
    use netsyn_fitness::OracleFitness;

    let samples = tiny_dataset(9);
    let model = train_regression_model(
        ClosenessMetric::CommonFunctions,
        &samples,
        LENGTH,
        &RegressionTrainerConfig::tiny(),
        &mut rng(14),
    );
    let fitness = RegressionFitness::new(model);
    let (spec, candidates) = scenario(15);
    let target = samples[0].target.clone();
    let oracle = OracleFitness::new(target, ClosenessMetric::CommonFunctions);

    let report = FitnessQualityReport::measure(&fitness, &oracle, &candidates, &spec);
    // Recompute everything through the per-candidate path.
    let singles: Vec<f64> = candidates.iter().map(|c| fitness.score(c, &spec)).collect();
    let oracle_singles: Vec<f64> = candidates.iter().map(|c| oracle.score(c, &spec)).collect();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    assert_eq!(report.num_candidates, candidates.len());
    assert_eq!(report.mean_score.to_bits(), mean(&singles).to_bits());
    assert_eq!(
        report.mean_reference_score.to_bits(),
        mean(&oracle_singles).to_bits()
    );
    assert_eq!(
        report.spearman.to_bits(),
        spearman_rank_correlation(&singles, &oracle_singles).to_bits()
    );
}
