//! Principal component analysis by power iteration with deflation.
//!
//! The bigram fitness model of Section 5.3.1 regresses onto a 41 × 41 bigram
//! matrix of which "over 99% ... are zeros"; the paper reduces the
//! dimensionality of this label space with principal component analysis
//! before training. No linear-algebra crate is in the workspace's dependency
//! budget, so this module implements the small amount of PCA machinery needed
//! on top of [`netsyn_nn::Matrix`]: mean-centering, covariance accumulation,
//! dominant-eigenvector extraction by power iteration, and deflation to
//! obtain the next components.
//!
//! The implementation favours clarity and determinism over speed — the label
//! matrices it is used on are at most a few thousand rows of 1,681 columns —
//! and is validated against hand-constructed low-rank data in the tests.

use netsyn_nn::vecops;
use serde::{Deserialize, Serialize};

/// A fitted PCA transform: `k` principal components of `d`-dimensional data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    /// Per-dimension mean of the training data (length `d`).
    mean: Vec<f32>,
    /// Principal components, one row per component (each of length `d`),
    /// ordered by decreasing explained variance.
    components: Vec<Vec<f32>>,
    /// Variance captured by each component (the corresponding eigenvalue of
    /// the covariance matrix).
    explained_variance: Vec<f32>,
    /// Total variance of the training data (trace of the covariance matrix).
    total_variance: f32,
}

/// Number of power-iteration steps per component. The covariance matrices in
/// this workspace are small and well-separated; 100 iterations is far more
/// than needed for 1e-4 accuracy.
const POWER_ITERATIONS: usize = 100;

impl Pca {
    /// Fits a PCA with `num_components` components to `data` (one sample per
    /// row). Components beyond the data's rank come out with (near-)zero
    /// explained variance and are retained so the output dimensionality is
    /// always exactly `num_components`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, rows have inconsistent lengths, or
    /// `num_components` is zero or exceeds the data dimensionality.
    #[must_use]
    pub fn fit(data: &[Vec<f32>], num_components: usize) -> Self {
        assert!(!data.is_empty(), "PCA needs at least one sample");
        let dim = data[0].len();
        assert!(dim > 0, "PCA needs at least one feature");
        assert!(
            data.iter().all(|row| row.len() == dim),
            "all samples must have the same dimensionality"
        );
        assert!(
            num_components >= 1 && num_components <= dim,
            "num_components must be in 1..={dim}"
        );

        let n = data.len() as f32;
        let mut mean = vec![0.0f32; dim];
        for row in data {
            vecops::add_assign(&mut mean, row);
        }
        for m in &mut mean {
            *m /= n;
        }

        // Centered data, kept explicitly: the covariance-vector product used
        // by the power iteration is X^T (X v) / n, which avoids materializing
        // the d x d covariance matrix for large d.
        let centered: Vec<Vec<f32>> = data
            .iter()
            .map(|row| row.iter().zip(mean.iter()).map(|(x, m)| x - m).collect())
            .collect();
        let total_variance = centered
            .iter()
            .map(|row| vecops::dot(row, row))
            .sum::<f32>()
            / n;

        let mut components: Vec<Vec<f32>> = Vec::with_capacity(num_components);
        let mut explained_variance = Vec::with_capacity(num_components);
        // Deflated copy of the centered data: after extracting a component we
        // project it out of every sample so the next power iteration finds
        // the next-largest direction.
        let mut residual = centered;
        for c in 0..num_components {
            let (component, variance) = dominant_direction(&residual, c);
            // Remove the found direction from the residual data.
            for row in &mut residual {
                let coeff = vecops::dot(row, &component);
                for (r, comp) in row.iter_mut().zip(component.iter()) {
                    *r -= coeff * comp;
                }
            }
            components.push(component);
            explained_variance.push(variance);
        }

        Pca {
            mean,
            components,
            explained_variance,
            total_variance,
        }
    }

    /// Dimensionality of the original data.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.mean.len()
    }

    /// Number of retained components.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Variance captured by each retained component, in decreasing order.
    #[must_use]
    pub fn explained_variance(&self) -> &[f32] {
        &self.explained_variance
    }

    /// Fraction of the training data's total variance captured by the
    /// retained components (in `[0, 1]`, up to floating-point error).
    #[must_use]
    pub fn explained_variance_ratio(&self) -> f32 {
        if self.total_variance <= f32::EPSILON {
            return 1.0;
        }
        (self.explained_variance.iter().sum::<f32>() / self.total_variance).min(1.0)
    }

    /// Projects one sample onto the retained components.
    ///
    /// # Panics
    ///
    /// Panics if the sample's dimensionality differs from the training data.
    #[must_use]
    pub fn transform(&self, sample: &[f32]) -> Vec<f32> {
        assert_eq!(
            sample.len(),
            self.input_dim(),
            "sample dimensionality mismatch"
        );
        let centered: Vec<f32> = sample
            .iter()
            .zip(self.mean.iter())
            .map(|(x, m)| x - m)
            .collect();
        self.components
            .iter()
            .map(|component| vecops::dot(&centered, component))
            .collect()
    }

    /// Projects a batch of samples onto the retained components.
    #[must_use]
    pub fn transform_batch(&self, samples: &[Vec<f32>]) -> Vec<Vec<f32>> {
        samples.iter().map(|s| self.transform(s)).collect()
    }

    /// Maps component coefficients back into the original space.
    ///
    /// # Panics
    ///
    /// Panics if `coefficients.len()` differs from the number of components.
    #[must_use]
    pub fn inverse_transform(&self, coefficients: &[f32]) -> Vec<f32> {
        assert_eq!(
            coefficients.len(),
            self.num_components(),
            "coefficient count mismatch"
        );
        let mut reconstructed = self.mean.clone();
        for (coeff, component) in coefficients.iter().zip(self.components.iter()) {
            for (r, c) in reconstructed.iter_mut().zip(component.iter()) {
                *r += coeff * c;
            }
        }
        reconstructed
    }

    /// Mean squared reconstruction error of `sample` after a round trip
    /// through the retained components.
    #[must_use]
    pub fn reconstruction_error(&self, sample: &[f32]) -> f32 {
        let reconstructed = self.inverse_transform(&self.transform(sample));
        let dim = sample.len() as f32;
        sample
            .iter()
            .zip(reconstructed.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / dim
    }
}

/// Extracts the dominant direction of the (implicitly represented) covariance
/// of `centered` rows by power iteration, returning the unit direction and
/// the variance along it. `seed_index` varies the deterministic start vector
/// between deflation rounds so consecutive components do not start parallel.
fn dominant_direction(centered: &[Vec<f32>], seed_index: usize) -> (Vec<f32>, f32) {
    let dim = centered[0].len();
    let n = centered.len() as f32;
    // Deterministic, non-degenerate start vector.
    let mut v: Vec<f32> = (0..dim)
        .map(|i| {
            let phase = (i + seed_index + 1) as f32;
            (phase * 0.734_21).sin() + 0.01
        })
        .collect();
    normalize(&mut v);

    for _ in 0..POWER_ITERATIONS {
        // w = C v = X^T (X v) / n
        let mut w = vec![0.0f32; dim];
        for row in centered {
            let coeff = vecops::dot(row, &v);
            for (wi, xi) in w.iter_mut().zip(row.iter()) {
                *wi += coeff * xi;
            }
        }
        for wi in &mut w {
            *wi /= n;
        }
        let norm = normalize(&mut w);
        if norm <= f32::EPSILON {
            // Residual variance is (numerically) zero: return an arbitrary
            // unit vector with zero explained variance.
            let mut fallback = vec![0.0f32; dim];
            fallback[seed_index % dim] = 1.0;
            return (fallback, 0.0);
        }
        v = w;
    }

    // Rayleigh quotient = variance along v.
    let variance = centered
        .iter()
        .map(|row| {
            let coeff = vecops::dot(row, &v);
            coeff * coeff
        })
        .sum::<f32>()
        / n;
    (v, variance)
}

/// Normalizes `v` in place and returns its original norm.
fn normalize(v: &mut [f32]) -> f32 {
    let norm = vecops::dot(v, v).sqrt();
    if norm > f32::EPSILON {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Data lying (noiselessly) on a 2-dimensional plane in 6-dimensional
    /// space.
    fn rank_two_data(n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let basis_a = [1.0, 0.0, 2.0, 0.0, -1.0, 0.5];
        let basis_b = [0.0, 3.0, -1.0, 1.0, 0.0, 0.25];
        (0..n)
            .map(|_| {
                let a: f32 = rng.gen_range(-2.0..2.0);
                let b: f32 = rng.gen_range(-2.0..2.0);
                basis_a
                    .iter()
                    .zip(basis_b.iter())
                    .map(|(&x, &y)| 0.3 + a * x + b * y)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn explained_variance_is_decreasing() {
        let data = rank_two_data(200, 1);
        let pca = Pca::fit(&data, 4);
        let ev = pca.explained_variance();
        assert_eq!(ev.len(), 4);
        for pair in ev.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-4, "variance not decreasing: {ev:?}");
        }
    }

    #[test]
    fn two_components_explain_rank_two_data() {
        let data = rank_two_data(300, 2);
        let pca = Pca::fit(&data, 2);
        assert!(
            pca.explained_variance_ratio() > 0.999,
            "ratio {}",
            pca.explained_variance_ratio()
        );
        // Reconstruction of in-plane points is essentially exact.
        for sample in data.iter().take(20) {
            assert!(pca.reconstruction_error(sample) < 1e-3);
        }
    }

    #[test]
    fn one_component_of_rank_two_data_loses_variance() {
        let data = rank_two_data(300, 3);
        let full = Pca::fit(&data, 2);
        let truncated = Pca::fit(&data, 1);
        assert!(truncated.explained_variance_ratio() < full.explained_variance_ratio());
        assert!(truncated.explained_variance_ratio() > 0.1);
    }

    #[test]
    fn transform_and_inverse_have_expected_dimensions() {
        let data = rank_two_data(50, 4);
        let pca = Pca::fit(&data, 3);
        assert_eq!(pca.input_dim(), 6);
        assert_eq!(pca.num_components(), 3);
        let coeffs = pca.transform(&data[0]);
        assert_eq!(coeffs.len(), 3);
        assert_eq!(pca.inverse_transform(&coeffs).len(), 6);
        assert_eq!(pca.transform_batch(&data[..5]).len(), 5);
    }

    #[test]
    fn components_are_orthonormal() {
        let data = rank_two_data(200, 5);
        let pca = Pca::fit(&data, 2);
        let c0 = &pca.components[0];
        let c1 = &pca.components[1];
        assert!((vecops::dot(c0, c0) - 1.0).abs() < 1e-3);
        assert!((vecops::dot(c1, c1) - 1.0).abs() < 1e-3);
        assert!(
            vecops::dot(c0, c1).abs() < 1e-2,
            "components not orthogonal"
        );
    }

    #[test]
    fn constant_data_has_zero_variance_and_exact_mean_reconstruction() {
        let data = vec![vec![2.0, -1.0, 3.0]; 10];
        let pca = Pca::fit(&data, 2);
        assert!(pca.explained_variance().iter().all(|&v| v.abs() < 1e-6));
        // With zero total variance the ratio convention is 1.0.
        assert_eq!(pca.explained_variance_ratio(), 1.0);
        let coeffs = pca.transform(&data[0]);
        let reconstructed = pca.inverse_transform(&coeffs);
        for (a, b) in reconstructed.iter().zip(data[0].iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn axis_aligned_variance_is_recovered() {
        // Variance 9 along axis 1, variance 1 along axis 0, none elsewhere.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let data: Vec<Vec<f32>> = (0..500)
            .map(|_| {
                vec![
                    rng.gen_range(-1.0..1.0),
                    3.0 * rng.gen_range(-1.0f32..1.0),
                    0.0,
                ]
            })
            .collect();
        let pca = Pca::fit(&data, 2);
        // First component is (close to) the second axis.
        let c0 = &pca.components[0];
        assert!(c0[1].abs() > 0.99, "first component {c0:?}");
        assert!(pca.explained_variance()[0] > pca.explained_variance()[1]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn fit_rejects_empty_data() {
        let _ = Pca::fit(&[], 1);
    }

    #[test]
    #[should_panic(expected = "num_components")]
    fn fit_rejects_too_many_components() {
        let _ = Pca::fit(&[vec![1.0, 2.0]], 3);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn transform_rejects_wrong_dimensionality() {
        let data = rank_two_data(10, 7);
        let pca = Pca::fit(&data, 1);
        let _ = pca.transform(&[1.0, 2.0]);
    }

    #[test]
    fn serde_round_trip() {
        let data = rank_two_data(30, 8);
        let pca = Pca::fit(&data, 2);
        let json = serde_json::to_string(&pca).unwrap();
        let back: Pca = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pca);
    }
}
