//! Regression-valued fitness models (Section 5.3.1, first alternative).
//!
//! Instead of a `(L + 1)`-way classifier over the CF or LCS value, the value
//! is treated as a real-valued regression target and the network is trained
//! with mean-squared error. The paper reports that such networks "had a
//! tendency to predict values close to the median of the values in the
//! training set", and that the resulting higher prediction error degraded the
//! genetic algorithm. This module reproduces that design and exposes
//! [`median_collapse_ratio`] as a direct measurement of the reported failure
//! mode (predicted-value spread divided by label spread; a healthy predictor
//! is near 1, a collapsed one near 0).

use crate::comparison::mean;
use netsyn_dsl::{IoSpec, Program};
use netsyn_fitness::dataset::FitnessSample;
use netsyn_fitness::encoding::{
    encode_candidate, encode_candidates, encode_spec, EncodingConfig, SpecEncodingCache,
    TraceEncodingCache,
};
use netsyn_fitness::{ClosenessMetric, FitnessFunction, FitnessNet, FitnessNetConfig};
use netsyn_nn::loss::mean_squared_error;
use netsyn_nn::{Adam, Parameterized};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for training a regression fitness model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTrainerConfig {
    /// Network hyper-parameters (the output dimension is forced to 1).
    pub net: FitnessNetConfig,
    /// Token-encoding configuration.
    pub encoding: EncodingConfig,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Number of samples per gradient step.
    pub batch_size: usize,
    /// Global gradient-norm clip applied before each step.
    pub grad_clip: f32,
    /// Fraction of the corpus held out for validation.
    pub validation_fraction: f64,
}

impl RegressionTrainerConfig {
    /// A compact configuration that trains in seconds-to-minutes on a CPU.
    #[must_use]
    pub fn small() -> Self {
        RegressionTrainerConfig {
            net: FitnessNetConfig::small(1),
            encoding: EncodingConfig::new(),
            epochs: 5,
            learning_rate: 2e-3,
            batch_size: 16,
            grad_clip: 5.0,
            validation_fraction: 0.2,
        }
    }

    /// A tiny configuration for unit tests (seconds of CPU time).
    #[must_use]
    pub fn tiny() -> Self {
        RegressionTrainerConfig {
            net: FitnessNetConfig {
                value_embed_dim: 4,
                encoder_hidden_dim: 6,
                function_embed_dim: 4,
                trace_hidden_dim: 6,
                example_hidden_dim: 8,
                head_hidden_dim: 8,
                output_dim: 1,
            },
            epochs: 2,
            batch_size: 8,
            ..RegressionTrainerConfig::small()
        }
    }
}

impl Default for RegressionTrainerConfig {
    fn default() -> Self {
        RegressionTrainerConfig::small()
    }
}

/// Statistics of one regression training epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionEpochStats {
    /// Epoch number, starting at 1.
    pub epoch: usize,
    /// Mean training MSE over the epoch.
    pub train_loss: f64,
    /// Mean absolute error on the validation split.
    pub validation_mae: f64,
    /// Standard deviation of the validation predictions. A value much
    /// smaller than the label standard deviation indicates the
    /// predict-the-median collapse the paper describes.
    pub prediction_std: f64,
}

/// Training history plus the final median-collapse diagnostic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionReport {
    /// Per-epoch statistics.
    pub epochs: Vec<RegressionEpochStats>,
    /// Standard deviation of the validation labels (for comparison with
    /// [`RegressionEpochStats::prediction_std`]).
    pub label_std: f64,
    /// Final prediction-spread / label-spread ratio (see
    /// [`median_collapse_ratio`]).
    pub collapse_ratio: f64,
}

/// A trained regression fitness model together with its metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedRegressionModel {
    /// Which closeness metric the model regresses (CF or LCS).
    pub metric: ClosenessMetric,
    /// Program length the model was trained for.
    pub program_length: usize,
    /// The trained network (a single linear output unit).
    pub net: FitnessNet,
    /// Training history and collapse diagnostics.
    pub report: RegressionReport,
}

fn label_of(metric: ClosenessMetric, sample: &FitnessSample) -> f32 {
    match metric {
        ClosenessMetric::CommonFunctions => sample.cf as f32,
        ClosenessMetric::LongestCommonSubsequence => sample.lcs as f32,
    }
}

/// The ratio between the spread of a model's predictions and the spread of
/// the true labels.
///
/// A well-calibrated regressor has a ratio near 1.0; the
/// predict-the-median failure mode reported by the paper shows up as a ratio
/// close to 0.0. Returns 1.0 when the labels themselves have no spread.
#[must_use]
pub fn median_collapse_ratio(predictions: &[f64], labels: &[f64]) -> f64 {
    let label_std = std_dev(labels);
    if label_std <= f64::EPSILON {
        return 1.0;
    }
    std_dev(predictions) / label_std
}

fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Trains a regression fitness model of the given metric on `samples`.
///
/// The network architecture is identical to the paper's classifier (Figure 2)
/// except for the head, which emits a single unbounded value trained with
/// mean-squared error against the true CF / LCS label.
pub fn train_regression_model<R: Rng + ?Sized>(
    metric: ClosenessMetric,
    samples: &[FitnessSample],
    program_length: usize,
    config: &RegressionTrainerConfig,
    rng: &mut R,
) -> TrainedRegressionModel {
    let mut net_config = config.net;
    net_config.output_dim = 1;
    let mut net = FitnessNet::new(net_config, config.encoding, rng);
    let mut optimizer = Adam::new(config.learning_rate);

    let mut indices: Vec<usize> = (0..samples.len()).collect();
    indices.shuffle(rng);
    let validation_len = ((samples.len() as f64) * config.validation_fraction).round() as usize;
    let (validation_idx, train_idx) = indices.split_at(validation_len.min(samples.len()));

    let mut epochs = Vec::with_capacity(config.epochs);
    let mut order: Vec<usize> = train_idx.to_vec();
    let mut last_predictions: Vec<f64> = Vec::new();
    for epoch in 1..=config.epochs {
        order.shuffle(rng);
        let mut total_loss = 0.0;
        for chunk in order.chunks(config.batch_size.max(1)) {
            for &idx in chunk {
                let sample = &samples[idx];
                let spec_encoding = encode_spec(&config.encoding, &sample.spec);
                let encoded = encode_candidate(&config.encoding, &sample.spec, &sample.candidate);
                let Ok((prediction, cache)) = net.forward(&spec_encoding, &encoded) else {
                    continue;
                };
                let target = [label_of(metric, sample)];
                let (loss, grad) = mean_squared_error(&prediction, &target);
                total_loss += f64::from(loss);
                net.backward(&cache, &grad);
            }
            net.clip_grad_norm(config.grad_clip);
            optimizer.step(&mut net.params_mut());
            net.zero_grad();
        }
        let train_loss = if order.is_empty() {
            0.0
        } else {
            total_loss / order.len() as f64
        };
        let (validation_mae, predictions) =
            validation_error(metric, &net, samples, validation_idx, &config.encoding);
        let prediction_std = std_dev(&predictions);
        last_predictions = predictions;
        epochs.push(RegressionEpochStats {
            epoch,
            train_loss,
            validation_mae,
            prediction_std,
        });
    }

    let labels: Vec<f64> = validation_idx
        .iter()
        .map(|&idx| f64::from(label_of(metric, &samples[idx])))
        .collect();
    let label_std = std_dev(&labels);
    let collapse_ratio = median_collapse_ratio(&last_predictions, &labels);

    TrainedRegressionModel {
        metric,
        program_length,
        net,
        report: RegressionReport {
            epochs,
            label_std,
            collapse_ratio,
        },
    }
}

fn validation_error(
    metric: ClosenessMetric,
    net: &FitnessNet,
    samples: &[FitnessSample],
    indices: &[usize],
    encoding: &EncodingConfig,
) -> (f64, Vec<f64>) {
    let mut total_abs = 0.0;
    let mut predictions = Vec::with_capacity(indices.len());
    for &idx in indices {
        let sample = &samples[idx];
        let spec_encoding = encode_spec(encoding, &sample.spec);
        let encoded = encode_candidate(encoding, &sample.spec, &sample.candidate);
        if let Ok(output) = net.predict(&spec_encoding, &encoded) {
            let prediction = f64::from(output[0]);
            total_abs += (prediction - f64::from(label_of(metric, sample))).abs();
            predictions.push(prediction);
        }
    }
    let mae = if predictions.is_empty() {
        0.0
    } else {
        total_abs / predictions.len() as f64
    };
    (mae, predictions)
}

/// A fitness function backed by a trained regression model.
///
/// The raw network output is unbounded; scores are clamped to
/// `[0, program_length]` so they remain valid Roulette-Wheel weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionFitness {
    model: TrainedRegressionModel,
    name: String,
    /// `name` plus the model's weight fingerprint, so shared caches never
    /// alias two differently-trained regression models.
    cache_key: String,
    /// One-slot spec-encoding memo (derived state; see `SpecEncodingCache`).
    spec_cache: SpecEncodingCache,
    /// Instance-owned trace-value encoding memo (derived state; see
    /// `TraceEncodingCache`).
    trace_cache: TraceEncodingCache,
}

impl RegressionFitness {
    /// Wraps a trained regression model.
    #[must_use]
    pub fn new(mut model: TrainedRegressionModel) -> Self {
        let name = format!("regression-{}", model.metric);
        let cache_key = format!("{name}#{:016x}", model.net.weight_fingerprint());
        RegressionFitness {
            model,
            name,
            cache_key,
            spec_cache: SpecEncodingCache::new(),
            trace_cache: TraceEncodingCache::new(),
        }
    }

    /// The wrapped model.
    #[must_use]
    pub fn model(&self) -> &TrainedRegressionModel {
        &self.model
    }
}

impl FitnessFunction for RegressionFitness {
    fn name(&self) -> &str {
        &self.name
    }

    /// Weight-fingerprinted: every trained regression model of one metric
    /// shares a display name, and shared score/trace shards must not alias
    /// different checkpoints.
    fn cache_key(&self) -> String {
        self.cache_key.clone()
    }

    fn score(&self, candidate: &Program, spec: &IoSpec) -> f64 {
        let spec_encoding = self
            .spec_cache
            .get_or_encode(self.model.net.encoding(), spec);
        let encoded = encode_candidate(self.model.net.encoding(), spec, candidate);
        match self.model.net.predict(&spec_encoding, &encoded) {
            Ok(output) => f64::from(output[0]).clamp(0.0, self.max_score()),
            Err(_) => 0.0,
        }
    }

    /// Batched scoring: the shared spec encoding plus one network pass over
    /// the whole candidate set (see `FitnessNet::predict_batch_with`; trace
    /// values recur across generations and are served from the memo),
    /// bit-identical to the per-candidate path.
    fn score_batch(&self, candidates: &[Program], spec: &IoSpec) -> Vec<f64> {
        self.score_batch_cached(candidates, spec, &self.trace_cache)
    }

    fn score_batch_cached(
        &self,
        candidates: &[Program],
        spec: &IoSpec,
        traces: &TraceEncodingCache,
    ) -> Vec<f64> {
        let spec_encoding = self
            .spec_cache
            .get_or_encode(self.model.net.encoding(), spec);
        let encoded = encode_candidates(self.model.net.encoding(), spec, candidates);
        match self
            .model
            .net
            .predict_batch_with(&spec_encoding, &encoded, traces)
        {
            Ok(rows) => rows
                .iter()
                .map(|output| f64::from(output[0]).clamp(0.0, self.max_score()))
                .collect(),
            Err(_) => candidates
                .iter()
                .map(|candidate| self.score(candidate, spec))
                .collect(),
        }
    }

    fn max_score(&self) -> f64 {
        self.model.program_length as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{Function, Generator, GeneratorConfig};
    use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn tiny_dataset(length: usize, seed: u64) -> Vec<FitnessSample> {
        let mut config = DatasetConfig::for_length(length);
        config.num_target_programs = 8;
        config.examples_per_program = 2;
        generate_dataset(&config, BalanceMetric::CommonFunctions, &mut rng(seed)).unwrap()
    }

    #[test]
    fn trains_a_cf_regression_model_end_to_end() {
        let samples = tiny_dataset(3, 1);
        let model = train_regression_model(
            ClosenessMetric::CommonFunctions,
            &samples,
            3,
            &RegressionTrainerConfig::tiny(),
            &mut rng(2),
        );
        assert_eq!(model.metric, ClosenessMetric::CommonFunctions);
        assert_eq!(model.program_length, 3);
        assert_eq!(model.report.epochs.len(), 2);
        assert!(model.report.epochs.iter().all(|e| e.train_loss.is_finite()));
        assert!(model.report.collapse_ratio.is_finite());
        assert!(model.report.collapse_ratio >= 0.0);
        assert!(model.report.label_std > 0.0);
    }

    #[test]
    fn training_reduces_mse_over_epochs() {
        let samples = tiny_dataset(3, 3);
        let mut config = RegressionTrainerConfig::tiny();
        config.epochs = 6;
        config.learning_rate = 5e-3;
        config.batch_size = 4;
        let model = train_regression_model(
            ClosenessMetric::CommonFunctions,
            &samples,
            3,
            &config,
            &mut rng(4),
        );
        let first = model.report.epochs.first().unwrap().train_loss;
        let last = model.report.epochs.last().unwrap().train_loss;
        assert!(last < first, "MSE should decrease: {first} -> {last}");
    }

    #[test]
    fn regression_fitness_scores_are_bounded() {
        let samples = tiny_dataset(3, 5);
        let model = train_regression_model(
            ClosenessMetric::LongestCommonSubsequence,
            &samples,
            3,
            &RegressionTrainerConfig::tiny(),
            &mut rng(6),
        );
        let fitness = RegressionFitness::new(model);
        assert_eq!(fitness.name(), "regression-LCS");
        assert_eq!(fitness.max_score(), 3.0);
        let mut r = rng(7);
        let generator = Generator::new(GeneratorConfig::for_length(3));
        let task = generator.task(3, &mut r).unwrap();
        for _ in 0..10 {
            let candidate = generator.random_program(&mut r);
            let score = fitness.score(&candidate, &task.spec);
            assert!((0.0..=3.0).contains(&score), "score {score} out of range");
        }
        assert!(fitness.probability_map(&task.spec).is_none());
        assert!(!fitness.model().report.epochs.is_empty());
    }

    #[test]
    fn empty_program_scores_without_panicking() {
        let samples = tiny_dataset(2, 8);
        let model = train_regression_model(
            ClosenessMetric::CommonFunctions,
            &samples,
            2,
            &RegressionTrainerConfig::tiny(),
            &mut rng(9),
        );
        let fitness = RegressionFitness::new(model);
        let spec = samples[0].spec.clone();
        let score = fitness.score(&Program::default(), &spec);
        assert!((0.0..=2.0).contains(&score));
        let score = fitness.score(&Program::new(vec![Function::Sort]), &spec);
        assert!((0.0..=2.0).contains(&score));
    }

    #[test]
    fn collapse_ratio_measures_spread_loss() {
        let labels = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        // A collapsed predictor: everything near the median.
        let collapsed = vec![2.4, 2.5, 2.5, 2.6, 2.5, 2.5];
        // A faithful predictor.
        let faithful = vec![0.1, 1.1, 1.9, 3.2, 3.9, 5.0];
        let r_collapsed = median_collapse_ratio(&collapsed, &labels);
        let r_faithful = median_collapse_ratio(&faithful, &labels);
        assert!(r_collapsed < 0.1, "collapsed ratio {r_collapsed}");
        assert!(r_faithful > 0.8, "faithful ratio {r_faithful}");
        // Degenerate labels are defined to give 1.0.
        assert_eq!(median_collapse_ratio(&[1.0, 2.0], &[3.0, 3.0]), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let samples = tiny_dataset(2, 10);
        let mut config = RegressionTrainerConfig::tiny();
        config.epochs = 1;
        let model = train_regression_model(
            ClosenessMetric::CommonFunctions,
            &samples,
            2,
            &config,
            &mut rng(11),
        );
        let json = serde_json::to_string(&model).unwrap();
        let back: TrainedRegressionModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.net, model.net);
        assert_eq!(back.metric, model.metric);
    }
}
