//! Bigram fitness (Section 5.3.1, fourth alternative).
//!
//! Instead of scoring whole candidates, the model predicts which *pairs* of
//! functions appear adjacently in the target program. Over 99% of the
//! 41 × 41 bigram matrix is zero for any single target, so the label space
//! is first reduced with [`Pca`] and the network regresses the principal
//! coefficients from the specification alone; the reconstructed matrix then
//! scores a candidate by the summed probability of its adjacent function
//! pairs (the bigram analogue of the FP fitness).

use crate::pca::Pca;
use netsyn_dsl::{Function, IoSpec, Program};
use netsyn_fitness::dataset::FitnessSample;
use netsyn_fitness::encoding::{encode_spec, EncodingConfig};
use netsyn_fitness::{FitnessFunction, FitnessNet, FitnessNetConfig};
use netsyn_nn::loss::mean_squared_error;
use netsyn_nn::{Adam, Parameterized};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense `41 x 41` map of adjacent-function-pair probabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BigramMap {
    probs: Vec<f64>,
}

impl BigramMap {
    /// Number of entries in the flattened matrix.
    #[must_use]
    pub fn len() -> usize {
        Function::COUNT * Function::COUNT
    }

    /// Creates a map from a flattened row-major matrix.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != 41 * 41`.
    #[must_use]
    pub fn new(probs: Vec<f64>) -> Self {
        assert_eq!(probs.len(), Self::len(), "bigram matrix must be 41x41");
        BigramMap { probs }
    }

    /// The exact bigram indicator of a target program, with `floor`
    /// probability for absent pairs.
    #[must_use]
    pub fn from_target(target: &Program, floor: f64) -> Self {
        let mut probs = vec![floor; Self::len()];
        for pair in target.functions().windows(2) {
            probs[pair[0].index() * Function::COUNT + pair[1].index()] = 1.0;
        }
        BigramMap { probs }
    }

    /// Probability that `second` immediately follows `first`.
    #[must_use]
    pub fn prob(&self, first: Function, second: Function) -> f64 {
        self.probs[first.index() * Function::COUNT + second.index()]
    }

    /// The flattened row-major matrix.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// Scores a candidate as the summed probability of its adjacent pairs.
    #[must_use]
    pub fn score(&self, candidate: &Program) -> f64 {
        candidate
            .functions()
            .windows(2)
            .map(|pair| self.prob(pair[0], pair[1]))
            .sum()
    }

    /// The fraction of entries equal to the map's minimum (the sparsity the
    /// paper motivates PCA with).
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        let min = self.probs.iter().cloned().fold(f64::INFINITY, f64::min);
        let at_floor = self.probs.iter().filter(|&&p| p <= min).count();
        at_floor as f64 / self.probs.len() as f64
    }
}

/// Hyper-parameters for training the bigram model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BigramTrainerConfig {
    /// Network hyper-parameters (output dimension forced to
    /// `num_components`).
    pub net: FitnessNetConfig,
    /// Token-encoding configuration.
    pub encoding: EncodingConfig,
    /// Number of principal components the label space is reduced to.
    pub num_components: usize,
    /// Number of passes over the distinct targets.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
}

impl BigramTrainerConfig {
    /// A tiny configuration for unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        BigramTrainerConfig {
            net: FitnessNetConfig {
                value_embed_dim: 4,
                encoder_hidden_dim: 6,
                function_embed_dim: 4,
                trace_hidden_dim: 6,
                example_hidden_dim: 8,
                head_hidden_dim: 8,
                output_dim: 4,
            },
            encoding: EncodingConfig::new(),
            num_components: 4,
            epochs: 2,
            learning_rate: 2e-3,
        }
    }
}

impl Default for BigramTrainerConfig {
    fn default() -> Self {
        BigramTrainerConfig::tiny()
    }
}

/// A trained bigram model: PCA basis plus the coefficient regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedBigramModel {
    /// Program length the model was trained for.
    pub program_length: usize,
    /// PCA basis fitted on the training bigram matrices.
    pub pca: Pca,
    /// Network regressing PCA coefficients from the specification.
    pub net: FitnessNet,
}

fn bigram_indicator(target: &Program) -> Vec<f32> {
    let mut indicator = vec![0.0f32; BigramMap::len()];
    for pair in target.functions().windows(2) {
        indicator[pair[0].index() * Function::COUNT + pair[1].index()] = 1.0;
    }
    indicator
}

/// Trains the bigram model on the distinct targets of `samples`.
pub fn train_bigram_model<R: Rng + ?Sized>(
    samples: &[FitnessSample],
    program_length: usize,
    config: &BigramTrainerConfig,
    rng: &mut R,
) -> TrainedBigramModel {
    // One training row per distinct target (bigram labels depend only on
    // the target, not the candidate).
    let mut targets: Vec<(&IoSpec, &Program)> = Vec::new();
    for sample in samples {
        if !targets.iter().any(|(_, t)| **t == sample.target) {
            targets.push((&sample.spec, &sample.target));
        }
    }
    let labels: Vec<Vec<f32>> = targets.iter().map(|(_, t)| bigram_indicator(t)).collect();
    let pca = Pca::fit(&labels, config.num_components.max(1));

    let mut net_config = config.net;
    net_config.output_dim = pca.num_components();
    let mut net = FitnessNet::new(net_config, config.encoding, rng);
    let mut optimizer = Adam::new(config.learning_rate);
    for _epoch in 0..config.epochs {
        for ((spec, _), label) in targets.iter().zip(labels.iter()) {
            let encoded = encode_spec(&config.encoding, spec);
            let Ok((coefficients, cache)) =
                net.forward(&encoded, &netsyn_fitness::CandidateEncoding::spec_only())
            else {
                continue;
            };
            let target_coefficients = pca.transform(label);
            let (_, grad) = mean_squared_error(&coefficients, &target_coefficients);
            net.backward(&cache, &grad);
            optimizer.step(&mut net.params_mut());
            net.zero_grad();
        }
    }

    TrainedBigramModel {
        program_length,
        pca,
        net,
    }
}

impl TrainedBigramModel {
    /// Predicts the bigram map for a specification (coefficients →
    /// reconstruction, clamped to `[0, 1]`).
    #[must_use]
    pub fn bigram_map(&self, spec: &IoSpec) -> BigramMap {
        let encoded = encode_spec(self.net.encoding(), spec);
        match self.net.predict_spec(&encoded) {
            Ok(coefficients) => {
                let reconstruction = self.pca.inverse_transform(&coefficients);
                BigramMap::new(
                    reconstruction
                        .iter()
                        .map(|&p| f64::from(p).clamp(0.0, 1.0))
                        .collect(),
                )
            }
            Err(_) => BigramMap::new(vec![0.0; BigramMap::len()]),
        }
    }
}

/// A fitness function scoring candidates under a fixed bigram map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BigramFitness {
    map: BigramMap,
    program_length: usize,
    name: String,
}

impl BigramFitness {
    /// Creates the fitness from a bigram map and the target program length.
    #[must_use]
    pub fn new(map: BigramMap, program_length: usize) -> Self {
        BigramFitness {
            map,
            program_length,
            name: "bigram".to_string(),
        }
    }

    /// The underlying bigram map.
    #[must_use]
    pub fn map(&self) -> &BigramMap {
        &self.map
    }
}

impl FitnessFunction for BigramFitness {
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&self, candidate: &Program, _spec: &IoSpec) -> f64 {
        self.map.score(candidate)
    }

    /// Batched scoring: the bigram score depends only on the fixed map, so
    /// the batch path just skips the per-call dynamic dispatch.
    fn score_batch(&self, candidates: &[Program], _spec: &IoSpec) -> Vec<f64> {
        candidates
            .iter()
            .map(|candidate| self.map.score(candidate))
            .collect()
    }

    fn max_score(&self) -> f64 {
        // A length-L program has L-1 adjacent pairs, each worth at most 1.
        self.program_length.saturating_sub(1).max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{IntPredicate, MapOp};
    use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
        ])
    }

    #[test]
    fn target_map_is_sparse_and_scores_the_target_highest() {
        let map = BigramMap::from_target(&target(), 0.0);
        assert!(map.sparsity() > 0.99, "sparsity {}", map.sparsity());
        assert_eq!(map.score(&target()), 2.0);
        let other = Program::new(vec![Function::Head, Function::Sum, Function::Last]);
        assert!(map.score(&other) < map.score(&target()));
        assert_eq!(
            map.prob(
                Function::Filter(IntPredicate::Positive),
                Function::Map(MapOp::Mul2)
            ),
            1.0
        );
    }

    #[test]
    fn trained_model_reconstructs_bounded_probabilities() {
        let mut config = DatasetConfig::for_length(3);
        config.num_target_programs = 6;
        config.examples_per_program = 2;
        let samples =
            generate_dataset(&config, BalanceMetric::CommonFunctions, &mut rng(1)).unwrap();
        let model = train_bigram_model(&samples, 3, &BigramTrainerConfig::tiny(), &mut rng(2));
        assert_eq!(model.program_length, 3);
        let map = model.bigram_map(&samples[0].spec);
        assert_eq!(map.as_slice().len(), BigramMap::len());
        assert!(map.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        let fitness = BigramFitness::new(map, 3);
        assert_eq!(fitness.name(), "bigram");
        assert_eq!(fitness.max_score(), 2.0);
        let score = fitness.score(&samples[0].candidate, &samples[0].spec);
        assert!((0.0..=2.0).contains(&score));
        assert!(fitness.map().as_slice().len() == BigramMap::len());
    }

    #[test]
    fn single_statement_programs_score_zero() {
        let map = BigramMap::from_target(&target(), 0.05);
        assert_eq!(map.score(&Program::new(vec![Function::Sort])), 0.0);
        assert_eq!(map.score(&Program::default()), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let map = BigramMap::from_target(&target(), 0.01);
        let json = serde_json::to_string(&map).unwrap();
        let back: BigramMap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, map);
    }
}
