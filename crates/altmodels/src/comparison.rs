//! Rank-correlation tooling for comparing alternative fitness functions
//! against the oracle.
//!
//! The Roulette Wheel only consumes the relative *ordering* of candidate
//! scores, so the right quality measure for a fitness function is a rank
//! correlation against the ideal fitness rather than an absolute error.
//! [`FitnessQualityReport::measure`] scores a shared candidate pool with a
//! model and with the oracle and reports the Spearman correlation between
//! the two rankings.

use netsyn_dsl::{IoSpec, Program};
use netsyn_fitness::FitnessFunction;
use serde::{Deserialize, Serialize};

/// Arithmetic mean (0.0 for an empty slice).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Average ranks with ties sharing their mid-rank (the convention Spearman
/// correlation requires).
fn fractional_ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    // total_cmp: a NaN score gets a deterministic (extreme) rank instead of
    // an order-dependent one from an inconsistent comparator.
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Positions i..=j are tied; give each the mean 1-based rank.
        let shared = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = shared;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation of two equally long score slices.
///
/// Ties receive fractional ranks. Returns 0.0 for slices shorter than two
/// elements or when either ranking has no variance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn spearman_rank_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "rank correlation needs paired scores");
    if xs.len() < 2 {
        return 0.0;
    }
    let rx = fractional_ranks(xs);
    let ry = fractional_ranks(ys);
    let mx = mean(&rx);
    let my = mean(&ry);
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in rx.iter().zip(ry.iter()) {
        cov += (x - mx) * (y - my);
        var_x += (x - mx) * (x - mx);
        var_y += (y - my) * (y - my);
    }
    if var_x <= f64::EPSILON || var_y <= f64::EPSILON {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

/// How faithfully a fitness function reproduces the oracle's candidate
/// ranking on a shared candidate pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitnessQualityReport {
    /// Name of the evaluated fitness function.
    pub fitness_name: String,
    /// Name of the reference (oracle) fitness function.
    pub reference_name: String,
    /// Number of candidates both functions scored.
    pub num_candidates: usize,
    /// Spearman rank correlation between the two rankings.
    pub spearman: f64,
    /// Mean score assigned by the evaluated fitness function.
    pub mean_score: f64,
    /// Mean score assigned by the reference.
    pub mean_reference_score: f64,
}

impl FitnessQualityReport {
    /// Scores `candidates` with both functions and builds the report.
    #[must_use]
    pub fn measure<F, O>(fitness: &F, reference: &O, candidates: &[Program], spec: &IoSpec) -> Self
    where
        F: FitnessFunction + ?Sized,
        O: FitnessFunction + ?Sized,
    {
        let scores = fitness.score_batch(candidates, spec);
        let reference_scores = reference.score_batch(candidates, spec);
        FitnessQualityReport {
            fitness_name: fitness.name().to_string(),
            reference_name: reference.name().to_string(),
            num_candidates: candidates.len(),
            spearman: spearman_rank_correlation(&scores, &reference_scores),
            mean_score: mean(&scores),
            mean_reference_score: mean(&reference_scores),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{Function, Generator, GeneratorConfig};
    use netsyn_fitness::{ClosenessMetric, OracleFitness};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn perfect_and_inverted_correlations() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let ys_up = vec![10.0, 20.0, 30.0, 40.0];
        let ys_down = vec![4.0, 3.0, 2.0, 1.0];
        assert!((spearman_rank_correlation(&xs, &ys_up) - 1.0).abs() < 1e-12);
        assert!((spearman_rank_correlation(&xs, &ys_down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_and_degenerate_inputs() {
        assert_eq!(spearman_rank_correlation(&[], &[]), 0.0);
        assert_eq!(spearman_rank_correlation(&[1.0], &[2.0]), 0.0);
        assert_eq!(spearman_rank_correlation(&[1.0, 1.0], &[0.0, 5.0]), 0.0);
        let with_ties = spearman_rank_correlation(&[1.0, 1.0, 2.0], &[3.0, 3.0, 9.0]);
        assert!((with_ties - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn oracle_self_report_has_perfect_correlation() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let generator = Generator::new(GeneratorConfig::for_length(3));
        let task = generator.task(3, &mut rng).unwrap();
        let candidates: Vec<Program> = (0..12)
            .map(|_| generator.random_program(&mut rng))
            .chain(std::iter::once(Program::new(vec![Function::Sort])))
            .collect();
        let oracle = OracleFitness::new(task.target.clone(), ClosenessMetric::CommonFunctions);
        let report = FitnessQualityReport::measure(&oracle, &oracle, &candidates, &task.spec);
        assert_eq!(report.num_candidates, candidates.len());
        assert_eq!(report.fitness_name, report.reference_name);
        // A function compared with itself ranks identically unless every
        // score is tied (then the correlation is defined as 0).
        assert!(report.spearman == 1.0 || report.spearman == 0.0);
        assert_eq!(report.mean_score, report.mean_reference_score);
    }
}
