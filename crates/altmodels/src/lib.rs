//! # netsyn-altmodels
//!
//! Alternative fitness-function models explored in Section 5.3.1 ("Additional
//! Models and Fitness Functions") of "Learning Fitness Functions for Machine
//! Programming" (MLSys 2021).
//!
//! The paper's primary fitness functions are multiclass classifiers over the
//! CF / LCS value and a per-function probability (FP) map; Section 5.3.1
//! reports on four further designs the authors tried and found to be
//! comparable or worse. This crate implements all four so that the paper's
//! negative findings can be reproduced and measured:
//!
//! * [`regression`] — the CF / LCS value treated as a *regression* target
//!   rather than a class. The paper reports that the network tends to predict
//!   values close to the median of the training labels, degrading the GA.
//!   [`regression::median_collapse_ratio`] quantifies exactly that failure
//!   mode.
//! * [`ranking`] — a pairwise ranking model trained to predict the relative
//!   correctness *ordering* of two candidates (the quantity the Roulette
//!   Wheel actually needs) instead of an absolute fitness value.
//! * [`twotier`] — a two-tier fitness function: a first network decides
//!   whether a candidate's fitness is zero, and only non-zero candidates are
//!   passed to a second network that predicts the actual value. The paper
//!   reports that tier-1 mispredictions eliminate good genes;
//!   [`twotier::TwoTierEvaluation::tier1_false_zero_rate`] measures it.
//! * [`bigram`] — a bigram model predicting which *pairs* of functions appear
//!   adjacently in the target program. Over 99% of the 41 × 41 bigram matrix
//!   is zero, so the label space is reduced with [`Pca`] before regression,
//!   following the paper's use of principal component analysis.
//!
//! Every model exposes a [`FitnessFunction`](netsyn_fitness::FitnessFunction)
//! adapter so it can drive the unchanged GA engine, and the [`comparison`]
//! module computes rank correlations against the oracle fitness so the
//! quality gap to the paper's primary CF / LCS classifiers can be reported
//! (see the `tab5_alt_models` benchmark binary).
//!
//! ## Example
//!
//! ```
//! use netsyn_altmodels::regression::{train_regression_model, RegressionTrainerConfig};
//! use netsyn_altmodels::RegressionFitness;
//! use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
//! use netsyn_fitness::{ClosenessMetric, FitnessFunction};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut dataset = DatasetConfig::for_length(3);
//! dataset.num_target_programs = 6;
//! dataset.examples_per_program = 2;
//! let samples = generate_dataset(&dataset, BalanceMetric::CommonFunctions, &mut rng)?;
//! let config = RegressionTrainerConfig::tiny();
//! let model = train_regression_model(ClosenessMetric::CommonFunctions, &samples, 3, &config, &mut rng);
//! let fitness = RegressionFitness::new(model);
//! assert!(fitness.max_score() >= 3.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bigram;
pub mod comparison;
mod pca;
pub mod ranking;
pub mod regression;
pub mod twotier;

pub use bigram::{BigramFitness, BigramMap, TrainedBigramModel};
pub use comparison::{spearman_rank_correlation, FitnessQualityReport};
pub use pca::Pca;
pub use ranking::{RankingFitness, TrainedRankingModel};
pub use regression::{RegressionFitness, TrainedRegressionModel};
pub use twotier::{TrainedTwoTierModel, TwoTierFitness};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pca>();
        assert_send_sync::<BigramMap>();
        assert_send_sync::<RegressionFitness>();
        assert_send_sync::<RankingFitness>();
        assert_send_sync::<TwoTierFitness>();
        assert_send_sync::<BigramFitness>();
        assert_send_sync::<FitnessQualityReport>();
    }
}
