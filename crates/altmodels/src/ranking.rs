//! Pairwise ranking fitness (Section 5.3.1, second alternative).
//!
//! The Roulette Wheel only needs the relative correctness *ordering* of two
//! candidates, so this model is trained directly on that quantity: a scoring
//! network assigns each candidate a scalar, and for a sampled pair `(a, b)`
//! with different oracle labels the difference `s(a) - s(b)` is pushed
//! through a sigmoid and trained with binary cross-entropy against "is `a`
//! closer to the target than `b`" (the classic RankNet objective). Candidates
//! are represented by their function histogram — the same information the
//! CF oracle consumes.

use netsyn_dsl::{Function, IoSpec, Program};
use netsyn_fitness::dataset::FitnessSample;
use netsyn_fitness::{ClosenessMetric, FitnessFunction};
use netsyn_nn::activation::sigmoid;
use netsyn_nn::{Activation, Adam, Matrix, Mlp, Parameterized};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for training a ranking model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankingTrainerConfig {
    /// Hidden width of the scoring MLP.
    pub hidden_dim: usize,
    /// Number of sampled training pairs.
    pub num_pairs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
}

impl RankingTrainerConfig {
    /// A configuration that trains in well under a second.
    #[must_use]
    pub fn tiny() -> Self {
        RankingTrainerConfig {
            hidden_dim: 16,
            num_pairs: 400,
            learning_rate: 5e-3,
        }
    }
}

impl Default for RankingTrainerConfig {
    fn default() -> Self {
        RankingTrainerConfig::tiny()
    }
}

/// A trained pairwise ranking model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedRankingModel {
    /// The closeness metric whose ordering the model was trained on.
    pub metric: ClosenessMetric,
    /// Program length the model was trained for.
    pub program_length: usize,
    /// The scoring network (histogram -> scalar).
    pub net: Mlp,
    /// Fraction of held-out pairs ordered correctly after training.
    pub pairwise_accuracy: f64,
}

fn histogram(candidate: &Program) -> Vec<f32> {
    let mut hist = vec![0.0f32; Function::COUNT];
    for func in candidate.functions() {
        hist[func.index()] += 1.0;
    }
    hist
}

fn label_of(metric: ClosenessMetric, sample: &FitnessSample) -> f64 {
    match metric {
        ClosenessMetric::CommonFunctions => sample.cf as f64,
        ClosenessMetric::LongestCommonSubsequence => sample.lcs as f64,
    }
}

/// Trains a RankNet-style ranking model on pairs drawn from `samples`.
///
/// Pairs with equal labels carry no ordering signal and are skipped during
/// sampling (up to a bounded number of retries).
pub fn train_ranking_model<R: Rng + ?Sized>(
    metric: ClosenessMetric,
    samples: &[FitnessSample],
    program_length: usize,
    config: &RankingTrainerConfig,
    rng: &mut R,
) -> TrainedRankingModel {
    let mut net = Mlp::new(
        &[Function::COUNT, config.hidden_dim, 1],
        Activation::Tanh,
        rng,
    );
    let mut optimizer = Adam::new(config.learning_rate);
    let mut held_out_correct = 0usize;
    let mut held_out_total = 0usize;

    for pair_index in 0..config.num_pairs {
        let Some((winner, loser)) = sample_ordered_pair(metric, samples, rng) else {
            break;
        };
        let wx = histogram(&samples[winner].candidate);
        let lx = histogram(&samples[loser].candidate);
        let (ws, w_cache) = net.forward(&wx);
        let (ls, l_cache) = net.forward(&lx);
        let margin = ws[0] - ls[0];
        // Every tenth pair is measured before the gradient step, giving an
        // (optimistically early) estimate of held-out pair accuracy.
        if pair_index % 10 == 0 {
            held_out_total += 1;
            if margin > 0.0 {
                held_out_correct += 1;
            }
        }
        // BCE on sigmoid(margin) with target 1: dL/dmargin = sigmoid - 1.
        let grad_margin = sigmoid(margin) - 1.0;
        net.backward(&w_cache, &[grad_margin]);
        net.backward(&l_cache, &[-grad_margin]);
        optimizer.step(&mut net.params_mut());
        net.zero_grad();
    }

    TrainedRankingModel {
        metric,
        program_length,
        net,
        pairwise_accuracy: if held_out_total == 0 {
            0.0
        } else {
            held_out_correct as f64 / held_out_total as f64
        },
    }
}

fn sample_ordered_pair<R: Rng + ?Sized>(
    metric: ClosenessMetric,
    samples: &[FitnessSample],
    rng: &mut R,
) -> Option<(usize, usize)> {
    if samples.len() < 2 {
        return None;
    }
    for _ in 0..64 {
        let a = rng.gen_range(0..samples.len());
        let b = rng.gen_range(0..samples.len());
        let la = label_of(metric, &samples[a]);
        let lb = label_of(metric, &samples[b]);
        if la > lb {
            return Some((a, b));
        }
        if lb > la {
            return Some((b, a));
        }
    }
    None
}

/// A fitness function backed by a trained ranking model.
///
/// The raw ranking score is unbounded and only meaningful relatively; it is
/// squashed through a sigmoid and scaled to `[0, program_length]` so it
/// remains a valid Roulette-Wheel weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankingFitness {
    model: TrainedRankingModel,
    name: String,
}

impl RankingFitness {
    /// Wraps a trained ranking model.
    #[must_use]
    pub fn new(model: TrainedRankingModel) -> Self {
        let name = format!("ranking-{}", model.metric);
        RankingFitness { model, name }
    }

    /// The wrapped model.
    #[must_use]
    pub fn model(&self) -> &TrainedRankingModel {
        &self.model
    }
}

impl FitnessFunction for RankingFitness {
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&self, candidate: &Program, _spec: &IoSpec) -> f64 {
        let raw = self.model.net.predict(&histogram(candidate))[0];
        f64::from(sigmoid(raw)) * self.max_score()
    }

    /// Batched scoring: all candidate histograms go through the scoring MLP
    /// in one matrix pass, bit-identical to the per-candidate path.
    fn score_batch(&self, candidates: &[Program], _spec: &IoSpec) -> Vec<f64> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let mut features = Matrix::zeros(candidates.len(), Function::COUNT);
        for (row, candidate) in candidates.iter().enumerate() {
            features.row_mut(row).copy_from_slice(&histogram(candidate));
        }
        let raw = self.model.net.forward_batch(&features);
        (0..candidates.len())
            .map(|row| f64::from(sigmoid(raw.row(row)[0])) * self.max_score())
            .collect()
    }

    fn max_score(&self) -> f64 {
        self.model.program_length as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn tiny_dataset(seed: u64) -> Vec<FitnessSample> {
        let mut config = DatasetConfig::for_length(3);
        config.num_target_programs = 8;
        config.examples_per_program = 2;
        generate_dataset(&config, BalanceMetric::CommonFunctions, &mut rng(seed)).unwrap()
    }

    #[test]
    fn trains_and_orders_against_the_metric() {
        let samples = tiny_dataset(1);
        let model = train_ranking_model(
            ClosenessMetric::CommonFunctions,
            &samples,
            3,
            &RankingTrainerConfig::tiny(),
            &mut rng(2),
        );
        assert_eq!(model.program_length, 3);
        assert!((0.0..=1.0).contains(&model.pairwise_accuracy));
        let fitness = RankingFitness::new(model);
        assert_eq!(fitness.name(), "ranking-CF");
        let spec = samples[0].spec.clone();
        for sample in samples.iter().take(10) {
            let score = fitness.score(&sample.candidate, &spec);
            assert!((0.0..=3.0).contains(&score), "score {score} out of range");
        }
    }

    #[test]
    fn degenerate_corpora_do_not_panic() {
        let model = train_ranking_model(
            ClosenessMetric::LongestCommonSubsequence,
            &[],
            3,
            &RankingTrainerConfig::tiny(),
            &mut rng(3),
        );
        assert_eq!(model.pairwise_accuracy, 0.0);
        let fitness = RankingFitness::new(model);
        let score = fitness.score(&Program::default(), &IoSpec::default());
        assert!((0.0..=3.0).contains(&score));
    }

    #[test]
    fn serde_round_trip() {
        let samples = tiny_dataset(4);
        let model = train_ranking_model(
            ClosenessMetric::CommonFunctions,
            &samples,
            3,
            &RankingTrainerConfig::tiny(),
            &mut rng(5),
        );
        let json = serde_json::to_string(&model).unwrap();
        let back: TrainedRankingModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, model);
    }
}
