//! Two-tier fitness (Section 5.3.1, third alternative).
//!
//! A first network (tier 1) decides whether a candidate's fitness is zero;
//! only candidates judged non-zero are passed to a second network (tier 2)
//! that predicts the actual CF / LCS value among `1..=L`. The paper reports
//! that tier-1 mispredictions *eliminate* good genes — a candidate wrongly
//! judged zero gets Roulette-Wheel weight 0 and can never reproduce.
//! [`TwoTierEvaluation::tier1_false_zero_rate`] measures exactly that
//! failure mode on a labelled corpus.

use netsyn_dsl::{IoSpec, Program};
use netsyn_fitness::dataset::FitnessSample;
use netsyn_fitness::encoding::{
    encode_candidate, encode_candidates, encode_spec, EncodingConfig, SpecEncodingCache,
    TraceEncodingCache,
};
use netsyn_fitness::{ClosenessMetric, FitnessFunction, FitnessNet, FitnessNetConfig};
use netsyn_nn::activation::{sigmoid, softmax};
use netsyn_nn::loss::{binary_cross_entropy_with_logits, softmax_cross_entropy};
use netsyn_nn::{Adam, Parameterized};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for training the two tiers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoTierTrainerConfig {
    /// Network hyper-parameters shared by both tiers (output dimensions are
    /// forced to 1 and `L` respectively).
    pub net: FitnessNetConfig,
    /// Token-encoding configuration.
    pub encoding: EncodingConfig,
    /// Number of passes over the training set, per tier.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Samples per gradient step.
    pub batch_size: usize,
}

impl TwoTierTrainerConfig {
    /// A tiny configuration for unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        TwoTierTrainerConfig {
            net: FitnessNetConfig {
                value_embed_dim: 4,
                encoder_hidden_dim: 6,
                function_embed_dim: 4,
                trace_hidden_dim: 6,
                example_hidden_dim: 8,
                head_hidden_dim: 8,
                output_dim: 1,
            },
            encoding: EncodingConfig::new(),
            epochs: 1,
            learning_rate: 2e-3,
            batch_size: 8,
        }
    }
}

impl Default for TwoTierTrainerConfig {
    fn default() -> Self {
        TwoTierTrainerConfig::tiny()
    }
}

/// A trained two-tier model: the zero/non-zero gate and the value head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedTwoTierModel {
    /// The closeness metric the value head predicts.
    pub metric: ClosenessMetric,
    /// Program length the model was trained for.
    pub program_length: usize,
    /// Tier 1: a single sigmoid unit predicting "fitness is non-zero".
    pub tier1: FitnessNet,
    /// Tier 2: a softmax classifier over the values `1..=L`.
    pub tier2: FitnessNet,
}

fn label_of(metric: ClosenessMetric, sample: &FitnessSample) -> usize {
    match metric {
        ClosenessMetric::CommonFunctions => sample.cf,
        ClosenessMetric::LongestCommonSubsequence => sample.lcs,
    }
}

/// Trains both tiers on `samples`.
///
/// Tier 1 sees every sample (label: fitness non-zero); tier 2 is trained
/// only on the samples with a non-zero label, over the classes `1..=L`.
pub fn train_two_tier_model<R: Rng + ?Sized>(
    metric: ClosenessMetric,
    samples: &[FitnessSample],
    program_length: usize,
    config: &TwoTierTrainerConfig,
    rng: &mut R,
) -> TrainedTwoTierModel {
    let mut tier1_config = config.net;
    tier1_config.output_dim = 1;
    let mut tier1 = FitnessNet::new(tier1_config, config.encoding, rng);
    let mut tier2_config = config.net;
    tier2_config.output_dim = program_length.max(1);
    let mut tier2 = FitnessNet::new(tier2_config, config.encoding, rng);

    let mut tier1_optimizer = Adam::new(config.learning_rate);
    let mut tier2_optimizer = Adam::new(config.learning_rate);
    for _epoch in 0..config.epochs {
        for chunk in samples.chunks(config.batch_size.max(1)) {
            for sample in chunk {
                let spec_encoding = encode_spec(&config.encoding, &sample.spec);
                let encoded = encode_candidate(&config.encoding, &sample.spec, &sample.candidate);
                let value = label_of(metric, sample);
                if let Ok((logits, cache)) = tier1.forward(&spec_encoding, &encoded) {
                    let target = [if value > 0 { 1.0 } else { 0.0 }];
                    let (_, grad) = binary_cross_entropy_with_logits(&logits, &target);
                    tier1.backward(&cache, &grad);
                }
                if value > 0 {
                    if let Ok((logits, cache)) = tier2.forward(&spec_encoding, &encoded) {
                        let class = (value - 1).min(program_length.saturating_sub(1));
                        let (_, grad) = softmax_cross_entropy(&logits, class);
                        tier2.backward(&cache, &grad);
                    }
                }
            }
            tier1_optimizer.step(&mut tier1.params_mut());
            tier1.zero_grad();
            tier2_optimizer.step(&mut tier2.params_mut());
            tier2.zero_grad();
        }
    }

    TrainedTwoTierModel {
        metric,
        program_length,
        tier1,
        tier2,
    }
}

impl TrainedTwoTierModel {
    /// Whether tier 1 judges the candidate's fitness to be non-zero.
    #[must_use]
    pub fn tier1_predicts_nonzero(&self, spec: &IoSpec, candidate: &Program) -> bool {
        let spec_encoding = encode_spec(self.tier1.encoding(), spec);
        let encoded = encode_candidate(self.tier1.encoding(), spec, candidate);
        match self.tier1.predict(&spec_encoding, &encoded) {
            Ok(logits) => sigmoid(logits[0]) >= 0.5,
            Err(_) => false,
        }
    }

    /// Tier 2's expected value over the classes `1..=L` (call only makes
    /// sense when tier 1 predicted non-zero).
    #[must_use]
    pub fn tier2_expected_value(&self, spec: &IoSpec, candidate: &Program) -> f64 {
        let spec_encoding = encode_spec(self.tier2.encoding(), spec);
        let encoded = encode_candidate(self.tier2.encoding(), spec, candidate);
        match self.tier2.predict(&spec_encoding, &encoded) {
            Ok(logits) => softmax(&logits)
                .iter()
                .enumerate()
                .map(|(class, &p)| (class + 1) as f64 * f64::from(p))
                .sum(),
            Err(_) => 0.0,
        }
    }

    /// Evaluates the gate on a labelled corpus.
    #[must_use]
    pub fn evaluate(&self, samples: &[FitnessSample]) -> TwoTierEvaluation {
        let mut evaluation = TwoTierEvaluation::default();
        for sample in samples {
            let truly_nonzero = label_of(self.metric, sample) > 0;
            let predicted_nonzero = self.tier1_predicts_nonzero(&sample.spec, &sample.candidate);
            match (truly_nonzero, predicted_nonzero) {
                (true, false) => evaluation.false_zeros += 1,
                (true, true) => evaluation.true_nonzeros += 1,
                (false, true) => evaluation.false_nonzeros += 1,
                (false, false) => evaluation.true_zeros += 1,
            }
        }
        evaluation
    }
}

/// Confusion counts of the tier-1 gate on a labelled corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TwoTierEvaluation {
    /// Non-zero-fitness candidates wrongly gated to zero (the gene-killing
    /// mispredictions the paper warns about).
    pub false_zeros: usize,
    /// Non-zero-fitness candidates correctly passed to tier 2.
    pub true_nonzeros: usize,
    /// Zero-fitness candidates wrongly passed to tier 2 (wasted effort, but
    /// harmless to the GA).
    pub false_nonzeros: usize,
    /// Zero-fitness candidates correctly gated.
    pub true_zeros: usize,
}

impl TwoTierEvaluation {
    /// The fraction of truly non-zero candidates that tier 1 wrongly
    /// eliminated (0.0 when the corpus has no non-zero candidates).
    #[must_use]
    pub fn tier1_false_zero_rate(&self) -> f64 {
        let nonzero = self.false_zeros + self.true_nonzeros;
        if nonzero == 0 {
            return 0.0;
        }
        self.false_zeros as f64 / nonzero as f64
    }
}

/// A fitness function backed by a trained two-tier model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoTierFitness {
    model: TrainedTwoTierModel,
    name: String,
    /// `name` plus both tiers' weight fingerprints, so shared caches never
    /// alias two differently-trained two-tier models.
    cache_key: String,
    /// One-slot spec-encoding memo (derived state; see `SpecEncodingCache`).
    spec_cache: SpecEncodingCache,
    /// Instance-owned trace-value encoding memos, one **per tier**: the
    /// tiers have different step-encoder weights, so their cached hidden
    /// states must never mix (which is also why this fitness keeps the
    /// default `score_batch_cached` — a single external shard cannot serve
    /// two models). Derived state, like `spec_cache`.
    tier1_traces: TraceEncodingCache,
    tier2_traces: TraceEncodingCache,
}

impl TwoTierFitness {
    /// Wraps a trained two-tier model.
    #[must_use]
    pub fn new(mut model: TrainedTwoTierModel) -> Self {
        let name = format!("two-tier-{}", model.metric);
        let cache_key = format!(
            "{name}#{:016x}{:016x}",
            model.tier1.weight_fingerprint(),
            model.tier2.weight_fingerprint()
        );
        TwoTierFitness {
            model,
            name,
            cache_key,
            spec_cache: SpecEncodingCache::new(),
            tier1_traces: TraceEncodingCache::new(),
            tier2_traces: TraceEncodingCache::new(),
        }
    }

    /// The wrapped model.
    #[must_use]
    pub fn model(&self) -> &TrainedTwoTierModel {
        &self.model
    }
}

impl FitnessFunction for TwoTierFitness {
    fn name(&self) -> &str {
        &self.name
    }

    /// Weight-fingerprinted (both tiers): shared score shards must not
    /// alias different checkpoints that share a display name.
    fn cache_key(&self) -> String {
        self.cache_key.clone()
    }

    fn score(&self, candidate: &Program, spec: &IoSpec) -> f64 {
        // Hand-assembled models with mismatched tier encodings take the
        // safe (re-encoding) path through the model's own helpers.
        if self.model.tier1.encoding() != self.model.tier2.encoding() {
            if !self.model.tier1_predicts_nonzero(spec, candidate) {
                return 0.0;
            }
            return self
                .model
                .tier2_expected_value(spec, candidate)
                .clamp(0.0, self.max_score());
        }
        // Shared encoding config: encode the spec (memoized) and the
        // candidate once, feed both tiers the same encodings. Encoding is
        // deterministic, so this matches the helper-based path bit-for-bit.
        let spec_encoding = self
            .spec_cache
            .get_or_encode(self.model.tier1.encoding(), spec);
        let encoded = encode_candidate(self.model.tier1.encoding(), spec, candidate);
        let passes = match self.model.tier1.predict(&spec_encoding, &encoded) {
            Ok(logits) => sigmoid(logits[0]) >= 0.5,
            Err(_) => false,
        };
        if !passes {
            return 0.0;
        }
        let expected = match self.model.tier2.predict(&spec_encoding, &encoded) {
            Ok(logits) => softmax(&logits)
                .iter()
                .enumerate()
                .map(|(class, &p)| (class + 1) as f64 * f64::from(p))
                .sum(),
            Err(_) => 0.0,
        };
        expected.clamp(0.0, self.max_score())
    }

    /// Batched scoring: one tier-1 network pass gates the whole candidate
    /// set, then one tier-2 pass values only the candidates that passed —
    /// bit-identical to the per-candidate path.
    fn score_batch(&self, candidates: &[Program], spec: &IoSpec) -> Vec<f64> {
        let sequential = |this: &Self| -> Vec<f64> {
            candidates
                .iter()
                .map(|candidate| this.score(candidate, spec))
                .collect()
        };
        // Both tiers are built from the same encoding config; if a
        // hand-assembled model disagrees, take the safe per-candidate path.
        if self.model.tier1.encoding() != self.model.tier2.encoding() {
            return sequential(self);
        }
        let spec_encoding = self
            .spec_cache
            .get_or_encode(self.model.tier1.encoding(), spec);
        let mut encoded = encode_candidates(self.model.tier1.encoding(), spec, candidates);
        let Ok(tier1_rows) =
            self.model
                .tier1
                .predict_batch_with(&spec_encoding, &encoded, &self.tier1_traces)
        else {
            return sequential(self);
        };
        let passing: Vec<usize> = tier1_rows
            .iter()
            .enumerate()
            .filter(|(_, logits)| sigmoid(logits[0]) >= 0.5)
            .map(|(index, _)| index)
            .collect();
        // `encoded` is owned and not used again below: move the passing
        // encodings out instead of deep-cloning their trace buffers.
        let passing_samples: Vec<_> = passing
            .iter()
            .map(|&i| std::mem::take(&mut encoded[i]))
            .collect();
        let Ok(tier2_rows) = self.model.tier2.predict_batch_with(
            &spec_encoding,
            &passing_samples,
            &self.tier2_traces,
        ) else {
            return sequential(self);
        };
        let mut scores = vec![0.0; candidates.len()];
        for (&index, logits) in passing.iter().zip(tier2_rows.iter()) {
            let expected: f64 = softmax(logits)
                .iter()
                .enumerate()
                .map(|(class, &p)| (class + 1) as f64 * f64::from(p))
                .sum();
            scores[index] = expected.clamp(0.0, self.max_score());
        }
        scores
    }

    fn max_score(&self) -> f64 {
        self.model.program_length as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn tiny_dataset(seed: u64) -> Vec<FitnessSample> {
        let mut config = DatasetConfig::for_length(3);
        config.num_target_programs = 6;
        config.examples_per_program = 2;
        generate_dataset(&config, BalanceMetric::CommonFunctions, &mut rng(seed)).unwrap()
    }

    #[test]
    fn trains_and_scores_in_range() {
        let samples = tiny_dataset(1);
        let model = train_two_tier_model(
            ClosenessMetric::CommonFunctions,
            &samples,
            3,
            &TwoTierTrainerConfig::tiny(),
            &mut rng(2),
        );
        let fitness = TwoTierFitness::new(model);
        assert_eq!(fitness.name(), "two-tier-CF");
        assert_eq!(fitness.max_score(), 3.0);
        for sample in samples.iter().take(10) {
            let score = fitness.score(&sample.candidate, &sample.spec);
            assert!((0.0..=3.0).contains(&score), "score {score} out of range");
        }
    }

    #[test]
    fn evaluation_counts_sum_to_corpus_size() {
        let samples = tiny_dataset(3);
        let model = train_two_tier_model(
            ClosenessMetric::CommonFunctions,
            &samples,
            3,
            &TwoTierTrainerConfig::tiny(),
            &mut rng(4),
        );
        let evaluation = model.evaluate(&samples);
        let total = evaluation.false_zeros
            + evaluation.true_nonzeros
            + evaluation.false_nonzeros
            + evaluation.true_zeros;
        assert_eq!(total, samples.len());
        assert!((0.0..=1.0).contains(&evaluation.tier1_false_zero_rate()));
    }

    #[test]
    fn false_zero_rate_handles_empty_corpora() {
        assert_eq!(TwoTierEvaluation::default().tier1_false_zero_rate(), 0.0);
        let eval = TwoTierEvaluation {
            false_zeros: 1,
            true_nonzeros: 3,
            ..TwoTierEvaluation::default()
        };
        assert_eq!(eval.tier1_false_zero_rate(), 0.25);
    }

    #[test]
    fn serde_round_trip() {
        let samples = tiny_dataset(5);
        let model = train_two_tier_model(
            ClosenessMetric::LongestCommonSubsequence,
            &samples,
            3,
            &TwoTierTrainerConfig::tiny(),
            &mut rng(6),
        );
        let json = serde_json::to_string(&model).unwrap();
        let back: TrainedTwoTierModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, model);
    }
}
