//! End-to-end fault-injection coverage of the record log: every fault the
//! [`FaultyFile`] harness can produce must land the loader in a correct
//! state — intact prefix served, damaged suffix dropped, or the whole
//! file rejected for quarantine. No fault may surface a forged record or
//! a panic.

use std::path::PathBuf;

use netsyn_persist::{
    decode_log, dir, FaultPlan, FaultyFile, LogError, LogWriter, Storage, FORMAT_VERSION, MAGIC,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "netsyn-persist-faults-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write `payloads` through a [`FaultyFile`] with `plan`, materialize the
/// damaged view, and decode it back. Append errors (ENOSPC) are returned
/// to the caller per record.
fn write_through_faults(
    tag: &str,
    plan: FaultPlan,
    payloads: &[&[u8]],
) -> (
    Result<netsyn_persist::LoadedLog, LogError>,
    Vec<std::io::Result<()>>,
) {
    let dir = temp_dir(tag);
    let path = dir.join("log.nsl");
    let storage = FaultyFile::create(&path, plan);
    let mut writer = LogWriter::new(Box::new(storage), b"test-header".to_vec()).unwrap();
    let mut results = Vec::new();
    for payload in payloads {
        results.push(writer.append(payload));
    }
    let _ = writer.sync();
    drop(writer); // materializes the reader-visible view (the "crash")
    let loaded = decode_log(&std::fs::read(&path).unwrap());
    let _ = std::fs::remove_dir_all(&dir);
    (loaded, results)
}

fn header_len() -> u64 {
    // magic + version + hlen + payload + crc for the b"test-header" header.
    (MAGIC.len() + 4 + 4 + b"test-header".len() + 4) as u64
}

#[test]
fn clean_run_round_trips() {
    let (loaded, results) =
        write_through_faults("clean", FaultPlan::none(), &[b"aa", b"bb", b"cc"]);
    assert!(results.iter().all(|r| r.is_ok()));
    let loaded = loaded.unwrap();
    assert_eq!(
        loaded.records,
        vec![b"aa".to_vec(), b"bb".to_vec(), b"cc".to_vec()]
    );
    assert!(loaded.damage.is_none());
}

#[test]
fn torn_write_mid_record_recovers_the_prefix() {
    // Tear inside the second record: header + rec1 survive, rec2 is torn.
    let rec1_len = 8 + 2;
    let tear_at = header_len() + rec1_len as u64 + 5;
    let (loaded, results) = write_through_faults(
        "torn",
        FaultPlan::torn_write(tear_at),
        &[b"aa", b"bb", b"cc"],
    );
    // Torn writes look successful to the writer — the loss shows at load.
    assert!(results.iter().all(|r| r.is_ok()));
    let loaded = loaded.unwrap();
    assert_eq!(loaded.records, vec![b"aa".to_vec()]);
    let damage = loaded.damage.expect("torn suffix must be reported");
    assert!(damage.reason.contains("torn"), "reason: {}", damage.reason);
}

#[test]
fn torn_write_at_every_offset_never_forges_a_record() {
    // Sweep the tear across the whole second record; whatever the offset,
    // recovery yields a prefix of what was written — never altered data.
    let payloads: [&[u8]; 2] = [b"first-record", b"second-record"];
    let rec1 = 8 + payloads[0].len() as u64;
    for cut in 0..(8 + payloads[1].len() as u64) {
        let tear_at = header_len() + rec1 + cut;
        let (loaded, _) =
            write_through_faults("torn-sweep", FaultPlan::torn_write(tear_at), &payloads);
        let loaded = loaded.unwrap();
        assert_eq!(
            loaded.records,
            vec![payloads[0].to_vec()],
            "tear at +{cut} must keep exactly the intact prefix"
        );
        assert!(loaded.damage.is_some() || cut == 0, "cut={cut}");
    }
}

#[test]
fn enospc_fails_the_append_but_never_the_log() {
    let rec1_len = 8 + 4;
    let fail_at = header_len() + rec1_len as u64 + 3;
    let (loaded, results) = write_through_faults(
        "enospc",
        FaultPlan::enospc(fail_at),
        &[b"full", b"disk", b"dead"],
    );
    assert!(results[0].is_ok());
    assert_eq!(results[1].as_ref().unwrap_err().raw_os_error(), Some(28));
    assert_eq!(results[2].as_ref().unwrap_err().raw_os_error(), Some(28));
    let loaded = loaded.unwrap();
    assert_eq!(loaded.records, vec![b"full".to_vec()]);
}

#[test]
fn bit_flip_in_payload_drops_from_that_record_on() {
    // Flip a bit inside the second record's payload (byte offset -> bit 0).
    let rec1_len = 8 + 3;
    let flip_byte = header_len() + rec1_len as u64 + 8 + 1;
    let (loaded, _) = write_through_faults(
        "flip",
        FaultPlan::bit_flip(flip_byte * 8),
        &[b"one", b"two", b"three"],
    );
    let loaded = loaded.unwrap();
    assert_eq!(loaded.records, vec![b"one".to_vec()]);
    let damage = loaded.damage.unwrap();
    assert!(
        damage.reason.contains("checksum"),
        "reason: {}",
        damage.reason
    );
}

#[test]
fn bit_flip_in_header_quarantines_the_file() {
    // Flip a bit inside the header payload: the header CRC fails and the
    // file is rejected outright (NotALog), the quarantine case.
    let flip_byte = (MAGIC.len() + 4 + 4 + 2) as u64;
    let (loaded, _) =
        write_through_faults("flip-header", FaultPlan::bit_flip(flip_byte * 8), &[b"rec"]);
    assert!(matches!(loaded, Err(LogError::NotALog(_))));
}

#[test]
fn short_read_of_the_header_quarantines() {
    let (loaded, _) = write_through_faults("short-header", FaultPlan::short_read(6), &[b"rec"]);
    assert!(matches!(loaded, Err(LogError::NotALog(_))));
}

#[test]
fn short_read_to_zero_is_a_clean_empty_log() {
    let (loaded, _) = write_through_faults("short-zero", FaultPlan::short_read(0), &[b"rec"]);
    let loaded = loaded.unwrap();
    assert_eq!(loaded.header, None);
    assert!(loaded.records.is_empty());
    assert!(loaded.damage.is_none());
}

#[test]
fn short_read_mid_records_keeps_the_intact_prefix() {
    let rec = |p: &[u8]| 8 + p.len() as u64;
    let keep = header_len() + rec(b"aaaa") + rec(b"bbbb") + 3; // 3 bytes into rec3
    let (loaded, _) = write_through_faults(
        "short-mid",
        FaultPlan::short_read(keep),
        &[b"aaaa", b"bbbb", b"cccc"],
    );
    let loaded = loaded.unwrap();
    assert_eq!(loaded.records, vec![b"aaaa".to_vec(), b"bbbb".to_vec()]);
    assert!(loaded.damage.is_some());
}

#[test]
fn wrong_version_file_is_rejected_for_quarantine() {
    let dir = temp_dir("wrong-version");
    let path = dir.join("log.nsl");
    let mut writer = LogWriter::open(&path, b"hdr".to_vec()).unwrap();
    writer.append(b"rec").unwrap();
    writer.sync().unwrap();
    drop(writer);

    let mut bytes = std::fs::read(&path).unwrap();
    bytes[MAGIC.len()] = (FORMAT_VERSION + 1) as u8;
    assert_eq!(
        decode_log(&bytes),
        Err(LogError::WrongVersion {
            found: FORMAT_VERSION + 1
        })
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn quarantine_then_cold_rebuild_preserves_the_corrupt_bytes() {
    // The full degradation dance: a corrupt file is quarantined (renamed,
    // not deleted) and a brand-new log takes its place.
    let dir = temp_dir("rebuild");
    let path = dir.join("log.nsl");
    std::fs::write(&path, b"absolute garbage, not a log").unwrap();

    let decoded = decode_log(&std::fs::read(&path).unwrap());
    assert!(matches!(decoded, Err(LogError::NotALog(_))));
    let quarantined = dir::quarantine(&path).unwrap();
    assert!(!path.exists());
    assert_eq!(
        std::fs::read(&quarantined).unwrap(),
        b"absolute garbage, not a log"
    );

    let mut writer = LogWriter::open(&path, b"hdr".to_vec()).unwrap();
    writer.append(b"fresh-start").unwrap();
    writer.sync().unwrap();
    drop(writer);
    let loaded = decode_log(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(loaded.records, vec![b"fresh-start".to_vec()]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_via_atomic_replace_round_trips() {
    // Damaged log -> decode prefix -> rewrite clean -> damage gone.
    let dir = temp_dir("compact");
    let path = dir.join("log.nsl");
    let hdr_len = (MAGIC.len() + 4 + 4 + b"hdr".len() + 4) as u64;
    let storage = FaultyFile::create(&path, FaultPlan::short_read(hdr_len + 8 + 4 + 5));
    let mut writer = LogWriter::new(Box::new(storage), b"hdr".to_vec()).unwrap();
    writer.append(b"keep").unwrap();
    writer.append(b"lost").unwrap();
    writer.sync().unwrap();
    drop(writer);

    let damaged = decode_log(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(damaged.records, vec![b"keep".to_vec()]);
    assert!(damaged.damage.is_some());

    let mut clean = netsyn_persist::log::encode_header(b"hdr");
    for record in &damaged.records {
        clean.extend_from_slice(&netsyn_persist::log::encode_record(record));
    }
    dir::atomic_replace(&path, &clean).unwrap();

    let reloaded = decode_log(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(reloaded.records, damaged.records);
    assert!(reloaded.damage.is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn faulty_file_len_tracks_persisted_bytes() {
    let dir = temp_dir("len");
    let mut file = FaultyFile::create(&dir.join("x.bin"), FaultPlan::torn_write(10));
    file.append(&[0u8; 6]).unwrap();
    assert_eq!(file.len().unwrap(), 6);
    file.append(&[0u8; 6]).unwrap(); // torn at 10
    assert_eq!(file.len().unwrap(), 10);
    drop(file);
    let _ = std::fs::remove_dir_all(&dir);
}
