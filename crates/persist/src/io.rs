//! The storage abstraction the log writer runs on.
//!
//! Production code uses [`FileStorage`] (a real append-mode file).
//! Tests substitute [`crate::fault::FaultyFile`] to inject torn writes,
//! bit flips, short reads and `ENOSPC` at exact byte offsets.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Append-only durable byte sink.
///
/// Implementations must honor the append-only discipline: `append` writes
/// at the current end, `sync` makes every appended byte durable. There is
/// no seek and no overwrite — that is what makes crash states analyzable
/// (a crash leaves a prefix plus at most one torn suffix).
pub trait Storage: Send {
    /// Append `bytes` at the end of the storage.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Make everything appended so far durable.
    fn sync(&mut self) -> io::Result<()>;
    /// Current length in bytes.
    fn len(&self) -> io::Result<u64>;
    /// True when the storage holds no bytes.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// Real file-backed storage, opened in append mode (created if missing).
#[derive(Debug)]
pub struct FileStorage {
    file: File,
    len: u64,
}

impl FileStorage {
    /// Open (or create) `path` for appending.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(FileStorage { file, len })
    }
}

impl Storage for FileStorage {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_storage_appends_and_reports_length() {
        let dir = std::env::temp_dir().join(format!("netsyn-persist-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("append.bin");
        let _ = std::fs::remove_file(&path);

        let mut storage = FileStorage::open(&path).unwrap();
        assert!(storage.is_empty().unwrap());
        storage.append(b"abc").unwrap();
        storage.append(b"de").unwrap();
        storage.sync().unwrap();
        assert_eq!(storage.len().unwrap(), 5);
        drop(storage);

        // Re-open appends after the existing bytes.
        let mut storage = FileStorage::open(&path).unwrap();
        assert_eq!(storage.len().unwrap(), 5);
        storage.append(b"f").unwrap();
        storage.sync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"abcdef");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
