//! The checksummed append-only record log: header/record framing,
//! the [`LogWriter`], and the paranoid [`decode_log`] recovery path.
//!
//! See the crate docs for the byte-level format. The invariants that make
//! recovery sound:
//!
//! * records carry their own length **and** CRC, so any prefix of the file
//!   that parses and checksums is exactly what a writer once appended;
//! * decoding stops at the first record that overruns the file or fails
//!   its CRC — a torn or corrupted suffix can hide data but never forge it;
//! * the header carries its own CRC over version + payload, so a file that
//!   is not (or no longer) a log of the expected lineage is detected before
//!   any record is trusted.

use std::fmt;
use std::io;
use std::path::Path;

use crate::codec::{ByteReader, ByteWriter};
use crate::crc32::crc32;
use crate::io::{FileStorage, Storage};

/// Magic bytes opening every log file.
pub const MAGIC: &[u8; 8] = b"NSYNLOG\0";

/// Current log format version. Bump on any framing change; readers
/// quarantine files with any other version.
pub const FORMAT_VERSION: u32 = 1;

/// Why a file cannot be used as a log at all (quarantine cases).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The file is not a recognizable log: bad magic, truncated or
    /// CRC-failing header. The string says which check failed.
    NotALog(String),
    /// The file is a log, but written by a different format version.
    WrongVersion {
        /// The version the file claims.
        found: u32,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::NotALog(reason) => write!(f, "not a netsyn log: {reason}"),
            LogError::WrongVersion { found } => write!(
                f,
                "log format version {found} (this build reads {FORMAT_VERSION})"
            ),
        }
    }
}

impl std::error::Error for LogError {}

/// A damaged suffix dropped during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Damage {
    /// Byte offset of the first unusable record.
    pub offset: u64,
    /// How many trailing bytes were dropped.
    pub dropped_bytes: u64,
    /// Human-readable reason (torn record, CRC mismatch, …).
    pub reason: String,
}

/// A successfully decoded log: the application header payload, every
/// intact record, and the damage report if a suffix was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedLog {
    /// The application header payload (`None` for a zero-length file,
    /// which is a valid empty log).
    pub header: Option<Vec<u8>>,
    /// Payloads of every record whose length and CRC checked out, in
    /// append order.
    pub records: Vec<Vec<u8>>,
    /// Set when a damaged suffix was dropped; the intact prefix is still
    /// served.
    pub damage: Option<Damage>,
}

/// Encode the file header for an application `header` payload.
pub fn encode_header(header: &[u8]) -> Vec<u8> {
    let mut checked = ByteWriter::new();
    checked.put_u32(FORMAT_VERSION);
    checked.put_bytes(header);
    let checked = checked.into_bytes();

    let mut out = Vec::with_capacity(MAGIC.len() + checked.len() + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&checked);
    out.extend_from_slice(&crc32(&checked).to_le_bytes());
    out
}

/// Encode one record frame around `payload`.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode `bytes` as a log file.
///
/// Returns `Err` only for the quarantine cases (not a log / wrong
/// version). Damaged record suffixes are *not* errors: the intact prefix
/// is returned with [`LoadedLog::damage`] describing what was dropped.
pub fn decode_log(bytes: &[u8]) -> Result<LoadedLog, LogError> {
    if bytes.is_empty() {
        // A crash between create and first write leaves a zero-length
        // file; that is a valid empty log, not corruption.
        return Ok(LoadedLog {
            header: None,
            records: Vec::new(),
            damage: None,
        });
    }
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC.as_slice() {
        return Err(LogError::NotALog("bad magic".into()));
    }
    let mut reader = ByteReader::new(&bytes[MAGIC.len()..]);
    let version = reader
        .get_u32()
        .map_err(|_| LogError::NotALog("truncated header".into()))?;
    // The version check runs before the header CRC so a version-bumped
    // file reports WrongVersion rather than a CRC mismatch — but only the
    // CRC can vouch for the version bytes themselves, so a corrupt version
    // field surfaces as WrongVersion too, which still quarantines.
    if version != FORMAT_VERSION {
        return Err(LogError::WrongVersion { found: version });
    }
    let header = reader
        .get_bytes()
        .map_err(|_| LogError::NotALog("truncated header payload".into()))?
        .to_vec();
    let checked_len = 4 + 4 + header.len();
    let expected = crc32(&bytes[MAGIC.len()..MAGIC.len() + checked_len]);
    let stored = reader
        .get_u32()
        .map_err(|_| LogError::NotALog("truncated header checksum".into()))?;
    if stored != expected {
        return Err(LogError::NotALog("header checksum mismatch".into()));
    }

    let records_start = (MAGIC.len() + checked_len + 4) as u64;
    let mut records = Vec::new();
    let mut damage = None;
    let mut offset = records_start;
    loop {
        if reader.is_empty() {
            break;
        }
        let remaining_before = reader.remaining() as u64;
        let frame = (|| {
            let len = reader.get_u32().ok()?;
            let crc = reader.get_u32().ok()?;
            if reader.remaining() < len as usize {
                return None;
            }
            Some((len, crc))
        })();
        let Some((len, crc)) = frame else {
            damage = Some(Damage {
                offset,
                dropped_bytes: remaining_before,
                reason: "torn record (frame overruns file)".into(),
            });
            break;
        };
        // Infallible: the length was just validated against the input.
        let payload = reader.get_raw(len as usize).expect("length pre-validated");
        if crc32(payload) != crc {
            damage = Some(Damage {
                offset,
                dropped_bytes: remaining_before,
                reason: "record checksum mismatch".into(),
            });
            break;
        }
        records.push(payload.to_vec());
        offset += 8 + len as u64;
    }

    Ok(LoadedLog {
        header: Some(header),
        records,
        damage,
    })
}

/// Appends framed records to a [`Storage`], writing the header lazily the
/// first time anything lands in an empty file.
pub struct LogWriter {
    storage: Box<dyn Storage>,
    header: Vec<u8>,
    header_written: bool,
}

impl fmt::Debug for LogWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogWriter")
            .field("header_len", &self.header.len())
            .field("header_written", &self.header_written)
            .finish()
    }
}

impl LogWriter {
    /// A writer over arbitrary storage (real file or fault-injected).
    ///
    /// `header` is the application header payload to stamp on an empty
    /// file; when the storage already holds bytes the header is assumed
    /// present (the loader verified it before handing over the path).
    pub fn new(storage: Box<dyn Storage>, header: Vec<u8>) -> io::Result<Self> {
        let header_written = !storage.is_empty()?;
        Ok(LogWriter {
            storage,
            header,
            header_written,
        })
    }

    /// Open `path` (append mode, created if missing) with real file
    /// storage.
    pub fn open(path: &Path, header: Vec<u8>) -> io::Result<Self> {
        let storage = FileStorage::open(path)?;
        Self::new(Box::new(storage), header)
    }

    /// Append one record. The frame is written with a single `append`
    /// call, so a torn write can only produce a torn *record*, which
    /// recovery drops — never interleave two half-records.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if !self.header_written {
            self.storage.append(&encode_header(&self.header))?;
            self.header_written = true;
        }
        self.storage.append(&encode_record(payload))
    }

    /// Make everything appended so far durable.
    pub fn sync(&mut self) -> io::Result<()> {
        self.storage.sync()
    }

    /// Current storage length in bytes.
    pub fn len(&self) -> io::Result<u64> {
        self.storage.len()
    }

    /// True when the storage holds no bytes.
    pub fn is_empty(&self) -> io::Result<bool> {
        self.storage.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_bytes(header: &[u8], payloads: &[&[u8]]) -> Vec<u8> {
        let mut bytes = encode_header(header);
        for payload in payloads {
            bytes.extend_from_slice(&encode_record(payload));
        }
        bytes
    }

    #[test]
    fn round_trip_header_and_records() {
        let bytes = log_bytes(b"hdr", &[b"one", b"", b"three"]);
        let loaded = decode_log(&bytes).unwrap();
        assert_eq!(loaded.header.as_deref(), Some(b"hdr".as_slice()));
        assert_eq!(
            loaded.records,
            vec![b"one".to_vec(), vec![], b"three".to_vec()]
        );
        assert!(loaded.damage.is_none());
    }

    #[test]
    fn empty_file_is_a_valid_empty_log() {
        let loaded = decode_log(b"").unwrap();
        assert_eq!(loaded.header, None);
        assert!(loaded.records.is_empty());
        assert!(loaded.damage.is_none());
    }

    #[test]
    fn torn_final_record_drops_only_the_suffix() {
        let bytes = log_bytes(b"h", &[b"keep-me", b"torn-away"]);
        for cut in 1..encode_record(b"torn-away").len() {
            let torn = &bytes[..bytes.len() - cut];
            let loaded = decode_log(torn).unwrap();
            assert_eq!(loaded.records, vec![b"keep-me".to_vec()], "cut={cut}");
            let damage = loaded.damage.expect("torn suffix must be reported");
            assert!(damage.dropped_bytes > 0);
        }
    }

    #[test]
    fn bit_flip_in_a_record_stops_decoding_there() {
        let bytes = log_bytes(b"h", &[b"first", b"second", b"third"]);
        // Flip one payload bit of the middle record.
        let second_frame_at = encode_header(b"h").len() + encode_record(b"first").len();
        let mut flipped = bytes.clone();
        flipped[second_frame_at + 8] ^= 0x10;
        let loaded = decode_log(&flipped).unwrap();
        assert_eq!(loaded.records, vec![b"first".to_vec()]);
        let damage = loaded.damage.unwrap();
        assert_eq!(damage.offset, second_frame_at as u64);
        assert!(damage.reason.contains("checksum"));
    }

    #[test]
    fn truncated_header_is_not_a_log() {
        let bytes = log_bytes(b"some-header", &[]);
        for cut in 1..=6 {
            let truncated = &bytes[..MAGIC.len() + cut];
            assert!(
                matches!(decode_log(truncated), Err(LogError::NotALog(_))),
                "header cut at {cut} must quarantine"
            );
        }
    }

    #[test]
    fn bad_magic_is_not_a_log() {
        assert!(matches!(
            decode_log(b"GARBAGE-not-a-log-at-all"),
            Err(LogError::NotALog(_))
        ));
    }

    #[test]
    fn wrong_version_is_reported_as_such() {
        let mut bytes = log_bytes(b"h", &[b"rec"]);
        bytes[MAGIC.len()] = 99; // version little-endian low byte
        assert_eq!(
            decode_log(&bytes),
            Err(LogError::WrongVersion { found: 99 })
        );
    }

    #[test]
    fn header_corruption_fails_the_header_crc() {
        let mut bytes = log_bytes(b"kind-string", &[b"rec"]);
        bytes[MAGIC.len() + 8] ^= 0x01; // inside the header payload
        assert!(matches!(decode_log(&bytes), Err(LogError::NotALog(_))));
    }

    #[test]
    fn writer_produces_decodable_logs_and_reopens_append_only() {
        let dir = std::env::temp_dir().join(format!("netsyn-persist-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("writer.nsl");
        let _ = std::fs::remove_file(&path);

        let mut writer = LogWriter::open(&path, b"app-header".to_vec()).unwrap();
        writer.append(b"alpha").unwrap();
        writer.sync().unwrap();
        drop(writer);

        let mut writer = LogWriter::open(&path, b"app-header".to_vec()).unwrap();
        writer.append(b"beta").unwrap();
        writer.sync().unwrap();
        drop(writer);

        let loaded = decode_log(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(loaded.header.as_deref(), Some(b"app-header".as_slice()));
        assert_eq!(loaded.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert!(loaded.damage.is_none());

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
