//! # netsyn-persist
//!
//! A crash-safe, dependency-free persistence primitive for the NetSyn
//! caches: a checksummed **append-only record log** plus the paranoid
//! recovery and fault-injection machinery around it. Like the
//! `crates/compat` shims, this crate uses nothing but `std`, so the
//! workspace stays buildable with no registry access.
//!
//! ## On-disk format
//!
//! A log file is a fixed header followed by zero or more records, all
//! integers little-endian:
//!
//! ```text
//! header:  magic   8 bytes  b"NSYNLOG\0"
//!          version u32      log::FORMAT_VERSION (currently 1)
//!          hlen    u32      length of the application header payload
//!          hdata   hlen     application header payload (opaque here)
//!          hcrc    u32      CRC-32 of version ‖ hlen ‖ hdata
//! record:  len     u32      payload length in bytes
//!          crc     u32      CRC-32 of the payload
//!          payload len      opaque application bytes
//! ```
//!
//! Records are only ever appended; [`log::LogWriter::sync`] makes everything
//! appended so far durable (`fdatasync`). A crash can therefore leave at
//! most a *torn suffix* — a partially written final record — never a
//! damaged prefix.
//!
//! ## Recovery contract
//!
//! [`log::decode_log`] is paranoid and graceful:
//!
//! * a zero-length file is a valid empty log (a crash can leave a
//!   created-but-unwritten file behind);
//! * a missing/garbled/truncated header, or a header whose CRC fails, means
//!   the file is **not a usable log** ([`log::LogError::NotALog`]) — callers
//!   quarantine it ([`dir::quarantine`]: rename, never delete) and start
//!   cold;
//! * a wrong format version ([`log::LogError::WrongVersion`]) is likewise a
//!   quarantine case — a newer or older writer owns the file;
//! * record decoding stops at the **first** record whose length field
//!   overruns the file or whose CRC fails: everything before it is served,
//!   the damaged suffix is reported as [`log::Damage`] and dropped. A CRC
//!   hit on a torn or bit-flipped record can only drop data, never alias it
//!   into a different valid record, so corruption degrades warmth — not
//!   correctness.
//!
//! ## Fault injection
//!
//! [`fault::FaultyFile`] implements the same [`io::Storage`] interface as
//! the real file-backed storage, but injects configurable faults — a torn
//! write at a byte offset, a bit flip, a short read, `ENOSPC` — so the
//! recovery contract above is provable by tests rather than asserted in
//! prose (see `tests/fault_injection.rs` and the fitness crate's
//! `durable_cache` suite).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod crc32;
pub mod dir;
pub mod fault;
pub mod io;
pub mod log;

pub use codec::{ByteReader, ByteWriter, Truncated};
pub use crc32::crc32;
pub use fault::{FaultPlan, FaultyFile};
pub use io::{FileStorage, Storage};
pub use log::{decode_log, Damage, LoadedLog, LogError, LogWriter, FORMAT_VERSION, MAGIC};
