//! Fault injection: a [`Storage`] implementation that fails on purpose.
//!
//! [`FaultyFile`] wraps an in-memory byte buffer plus a mirror file on
//! disk and injects the fault classes a real filesystem can produce, at
//! exact byte offsets chosen by the test:
//!
//! * **torn write** — an `append` that crosses the configured offset
//!   persists only the prefix up to it, then reports success (the classic
//!   lost-write-after-crash state: the writer believes the bytes landed);
//! * **ENOSPC** — an `append` crossing the offset persists the prefix and
//!   returns `io::Error::from_raw_os_error(28)`;
//! * **bit flip** — one bit of the stored bytes is inverted when the
//!   mirror is materialized (silent media corruption);
//! * **short read** — the mirror file is truncated to a configured length
//!   (a reader that sees less than was written).
//!
//! Write faults fire while the log is being produced; read faults damage
//! what a later loader observes. Both funnel into the same recovery
//! contract: `decode_log` serves the intact prefix and drops or rejects
//! the rest.

use std::io;
use std::path::{Path, PathBuf};

use crate::io::Storage;

/// `ENOSPC` — no space left on device.
const ENOSPC: i32 = 28;

/// Which faults a [`FaultyFile`] injects, all offsets in absolute file
/// bytes. `None` everywhere means the file behaves perfectly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Persist only the bytes below this offset for the `append` that
    /// crosses it, then report success (torn write). Later appends are
    /// dropped entirely.
    pub torn_write_at: Option<u64>,
    /// The `append` crossing this offset persists the prefix below it and
    /// fails with `ENOSPC`. Later appends fail the same way.
    pub enospc_at: Option<u64>,
    /// Invert one bit — bit `offset % 8` of byte `offset / 8` — when the
    /// stored bytes are materialized for a reader.
    pub bit_flip_at: Option<u64>,
    /// Truncate what a reader observes to this many bytes.
    pub short_read_len: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Tear the write that crosses `offset`.
    pub fn torn_write(offset: u64) -> Self {
        FaultPlan {
            torn_write_at: Some(offset),
            ..Self::default()
        }
    }

    /// Fail with `ENOSPC` at `offset`.
    pub fn enospc(offset: u64) -> Self {
        FaultPlan {
            enospc_at: Some(offset),
            ..Self::default()
        }
    }

    /// Flip one bit at bit-offset `offset * 8 + (offset % 8)`… precisely:
    /// bit `offset % 8` of byte `offset / 8` of the stored bytes.
    pub fn bit_flip(offset: u64) -> Self {
        FaultPlan {
            bit_flip_at: Some(offset),
            ..Self::default()
        }
    }

    /// Let readers observe only the first `len` bytes.
    pub fn short_read(len: u64) -> Self {
        FaultPlan {
            short_read_len: Some(len),
            ..Self::default()
        }
    }
}

/// A [`Storage`] that misbehaves according to a [`FaultPlan`].
///
/// Appends accumulate in memory (after write-fault filtering); calling
/// [`FaultyFile::materialize`] — or dropping the value — writes the
/// read-fault-damaged view to the backing path, where the normal loader
/// will find it. This mirrors the real-world split: write faults happen
/// while the process is alive, read faults are discovered at next boot.
#[derive(Debug)]
pub struct FaultyFile {
    path: PathBuf,
    plan: FaultPlan,
    stored: Vec<u8>,
    materialized: bool,
}

impl FaultyFile {
    /// A faulty storage that materializes to `path` with faults per `plan`.
    /// An existing file's bytes seed the buffer, matching the append-mode
    /// semantics of the real storage.
    pub fn create(path: &Path, plan: FaultPlan) -> Self {
        FaultyFile {
            path: path.to_path_buf(),
            plan,
            stored: std::fs::read(path).unwrap_or_default(),
            materialized: false,
        }
    }

    /// The bytes that actually persisted (post write-faults, pre
    /// read-faults).
    pub fn stored(&self) -> &[u8] {
        &self.stored
    }

    /// Write the reader-visible view — stored bytes with bit-flip and
    /// short-read applied — to the backing path.
    pub fn materialize(&mut self) -> io::Result<()> {
        self.materialized = true;
        let mut view = self.stored.clone();
        if let Some(offset) = self.plan.bit_flip_at {
            let byte = (offset / 8) as usize;
            if byte < view.len() {
                view[byte] ^= 1 << (offset % 8);
            }
        }
        if let Some(len) = self.plan.short_read_len {
            view.truncate(len as usize);
        }
        std::fs::write(&self.path, &view)
    }
}

impl Drop for FaultyFile {
    fn drop(&mut self) {
        if !self.materialized {
            let _ = self.materialize();
        }
    }
}

impl Storage for FaultyFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let end = self.stored.len() as u64;
        if let Some(offset) = self.plan.torn_write_at {
            if end + bytes.len() as u64 > offset {
                let keep = offset.saturating_sub(end) as usize;
                self.stored
                    .extend_from_slice(&bytes[..keep.min(bytes.len())]);
                // A torn write *looks* successful to the writer; the loss
                // is only visible after the crash.
                return Ok(());
            }
        }
        if let Some(offset) = self.plan.enospc_at {
            if end + bytes.len() as u64 > offset {
                let keep = offset.saturating_sub(end) as usize;
                self.stored
                    .extend_from_slice(&bytes[..keep.min(bytes.len())]);
                return Err(io::Error::from_raw_os_error(ENOSPC));
            }
        }
        self.stored.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        // The in-memory buffer is already "durable"; materialization to the
        // backing path happens at drop, playing the role of the crash.
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.stored.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("netsyn-persist-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn torn_write_keeps_prefix_and_reports_success() {
        let mut file = FaultyFile::create(&temp_path("torn.bin"), FaultPlan::torn_write(4));
        file.append(b"ab").unwrap();
        file.append(b"cdef").unwrap(); // crosses offset 4: keeps "cd"
        file.append(b"gh").unwrap(); // dropped entirely
        assert_eq!(file.stored(), b"abcd");
    }

    #[test]
    fn enospc_fails_the_crossing_append() {
        let mut file = FaultyFile::create(&temp_path("enospc.bin"), FaultPlan::enospc(3));
        file.append(b"ab").unwrap();
        let err = file.append(b"cd").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(ENOSPC));
        assert_eq!(file.stored(), b"abc");
    }

    #[test]
    fn bit_flip_and_short_read_shape_the_materialized_view() {
        let path = temp_path("flip.bin");
        let mut file = FaultyFile::create(
            &path,
            FaultPlan {
                bit_flip_at: Some(8), // bit 0 of byte 1
                short_read_len: Some(3),
                ..FaultPlan::default()
            },
        );
        file.append(b"abcd").unwrap();
        file.materialize().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), [b'a', b'b' ^ 1, b'c']);
        // The in-memory stored bytes stay pristine.
        assert_eq!(file.stored(), b"abcd");
    }
}
