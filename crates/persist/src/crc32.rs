//! Table-driven CRC-32 (IEEE 802.3, polynomial `0xEDB88320`).
//!
//! This is the same checksum zlib/gzip/PNG use, implemented here so the
//! crate stays dependency-free. The standard check value applies:
//! `crc32(b"123456789") == 0xCBF4_3926`.

/// The reflected IEEE CRC-32 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one byte of input per step.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 state. Feed bytes with [`Crc32::update`], read the
/// final checksum with [`Crc32::finish`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum over the empty string.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Absorb `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &byte in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything absorbed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut crc = Crc32::new();
        crc.update(b"1234");
        crc.update(b"");
        crc.update(b"56789");
        assert_eq!(crc.finish(), crc32(b"123456789"));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let clean = b"the quick brown fox".to_vec();
        let reference = crc32(&clean);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut flipped = clean.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
