//! Little-endian byte (de)serialization primitives shared by the log
//! layer and by applications encoding record payloads.
//!
//! The reader is *total*: every accessor returns `Result<_, Truncated>`
//! instead of panicking, because record payloads come off disk and may be
//! arbitrarily damaged. Length-prefixed reads validate the length against
//! the remaining input before allocating, so a corrupt length field cannot
//! trigger an out-of-memory abort.

use std::fmt;

/// The input ended (or a length prefix overran it) while decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncated;

impl fmt::Display for Truncated {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte stream truncated mid-value")
    }
}

impl std::error::Error for Truncated {}

/// Append-only little-endian encoder.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append an `i64`, little-endian.
    pub fn put_i64(&mut self, value: i64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append an `f64` as its raw bit pattern (bit-exact, NaN-safe).
    pub fn put_f64_bits(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    /// Append an `f32` as its raw bit pattern (bit-exact, NaN-safe).
    pub fn put_f32_bits(&mut self, value: f32) {
        self.buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    /// Append raw bytes with a `u32` length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Append a UTF-8 string with a `u32` length prefix.
    pub fn put_str(&mut self, value: &str) {
        self.put_bytes(value.as_bytes());
    }
}

/// Cursor-based little-endian decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Truncated> {
        if self.remaining() < n {
            return Err(Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a single byte.
    pub fn get_u8(&mut self) -> Result<u8, Truncated> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, Truncated> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, Truncated> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, Truncated> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` stored as its raw bit pattern.
    pub fn get_f64_bits(&mut self) -> Result<f64, Truncated> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read an `f32` stored as its raw bit pattern.
    pub fn get_f32_bits(&mut self) -> Result<f32, Truncated> {
        Ok(f32::from_bits(u32::from_le_bytes(
            self.take(4)?.try_into().unwrap(),
        )))
    }

    /// Read a `u32`-length-prefixed byte slice. The length is validated
    /// against the remaining input before anything is materialized.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], Truncated> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Read exactly `n` raw bytes with no length prefix (for externally
    /// framed data whose length was already decoded and validated).
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], Truncated> {
        self.take(n)
    }

    /// Read a `u32`-length-prefixed UTF-8 string. Invalid UTF-8 counts as
    /// damage, same as truncation.
    pub fn get_str(&mut self) -> Result<&'a str, Truncated> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| Truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64_bits(f64::NAN);
        w.put_f32_bits(-0.0f32);
        w.put_bytes(b"raw");
        w.put_str("héllo");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64_bits().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.get_f32_bits().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.get_bytes().unwrap(), b"raw");
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(r.get_u64(), Err(Truncated));
    }

    #[test]
    fn corrupt_length_prefix_does_not_overrun() {
        // A length prefix claiming 4 GiB against a 4-byte buffer must fail
        // cleanly without allocating.
        let bytes = u32::MAX.to_le_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_bytes(), Err(Truncated));
    }

    #[test]
    fn invalid_utf8_is_damage() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).get_str(), Err(Truncated));
    }
}
