//! Directory-level recovery helpers: quarantine (rename, never delete)
//! and crash-safe whole-file replacement for compaction.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Move an unreadable file aside so a cold cache can be rebuilt in its
/// place, **never deleting data**: the file is renamed to
/// `<name>.quarantined` (or `<name>.quarantined-1`, `-2`, … if earlier
/// quarantines exist) in the same directory. Returns the quarantine path.
pub fn quarantine(path: &Path) -> io::Result<PathBuf> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut target = dir.join(format!("{file_name}.quarantined"));
    let mut counter = 0u32;
    while target.exists() {
        counter += 1;
        if counter > 10_000 {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "too many quarantined files",
            ));
        }
        target = dir.join(format!("{file_name}.quarantined-{counter}"));
    }
    fs::rename(path, &target)?;
    Ok(target)
}

/// Atomically replace `path` with `contents`: write to a sibling temp
/// file, fsync it, rename over the target, then fsync the directory so
/// the rename itself is durable. A crash at any point leaves either the
/// old file or the new one — never a torn mixture.
pub fn atomic_replace(path: &Path, contents: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{file_name}.tmp-{}", std::process::id()));
    {
        let mut file = fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, contents)?;
        file.sync_all()?;
    }
    if let Err(err) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(err);
    }
    // Persist the rename: fsync the containing directory (best-effort on
    // platforms where directories cannot be opened).
    if let Ok(dir_handle) = fs::File::open(dir) {
        let _ = dir_handle.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("netsyn-persist-dir-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn quarantine_renames_and_never_clobbers() {
        let dir = temp_dir("quarantine");
        let path = dir.join("scores.nsl");

        fs::write(&path, b"first-corruption").unwrap();
        let q1 = quarantine(&path).unwrap();
        assert!(!path.exists());
        assert_eq!(fs::read(&q1).unwrap(), b"first-corruption");

        fs::write(&path, b"second-corruption").unwrap();
        let q2 = quarantine(&path).unwrap();
        assert_ne!(q1, q2, "a second quarantine must not overwrite the first");
        assert_eq!(fs::read(&q1).unwrap(), b"first-corruption");
        assert_eq!(fs::read(&q2).unwrap(), b"second-corruption");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_replace_installs_contents_and_leaves_no_temp() {
        let dir = temp_dir("replace");
        let path = dir.join("log.nsl");
        fs::write(&path, b"old").unwrap();

        atomic_replace(&path, b"new-and-improved").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new-and-improved");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| name.contains(".tmp-"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_replace_creates_missing_target() {
        let dir = temp_dir("create");
        let path = dir.join("fresh.nsl");
        atomic_replace(&path, b"born-atomic").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"born-atomic");
        fs::remove_dir_all(&dir).unwrap();
    }
}
