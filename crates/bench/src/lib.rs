//! Shared harness for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Every binary accepts the same command-line flags:
//!
//! * `--full` — move parameters toward paper scale (larger suites, more runs,
//!   larger budgets, bigger training corpora); the defaults finish in minutes
//!   on a laptop CPU.
//! * `--length <L>` — restrict the experiment to one program length.
//! * `--table` — print the numeric table form (Tables 3/4) instead of the
//!   per-program curve series.
//!
//! Trained model bundles are cached under `target/netsyn-models/` so repeated
//! experiment runs do not retrain the fitness networks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use netsyn_core::prelude::*;
use netsyn_dsl::SynthesisTask;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::Arc;

/// Command-line configuration shared by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessConfig {
    /// Program lengths to evaluate.
    pub lengths: Vec<usize>,
    /// Test programs per output kind (singleton / list) per length.
    pub tasks_per_kind: usize,
    /// Repetitions per task (`K` in the paper, 10).
    pub runs_per_task: usize,
    /// Candidate-budget cap per attempt (3,000,000 in the paper).
    pub budget_cap: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Whether `--full` was passed.
    pub full: bool,
    /// Whether `--table` was passed.
    pub table: bool,
}

impl HarnessConfig {
    /// Parses the standard flags from `std::env::args`.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let full = args.iter().any(|a| a == "--full");
        let table = args.iter().any(|a| a == "--table");
        let length = args
            .iter()
            .position(|a| a == "--length")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok());
        let mut config = if full {
            HarnessConfig {
                lengths: vec![5, 7, 10],
                tasks_per_kind: 50,
                runs_per_task: 10,
                budget_cap: 3_000_000,
                seed: 2021,
                full,
                table,
            }
        } else {
            HarnessConfig {
                lengths: vec![5],
                tasks_per_kind: 5,
                runs_per_task: 2,
                budget_cap: 4_000,
                seed: 2021,
                full,
                table,
            }
        };
        if let Some(length) = length {
            config.lengths = vec![length];
        }
        config
    }

    /// A fixed small configuration used by the harness's own tests.
    #[must_use]
    pub fn tiny() -> Self {
        HarnessConfig {
            lengths: vec![2],
            tasks_per_kind: 2,
            runs_per_task: 1,
            budget_cap: 2_000,
            seed: 7,
            full: false,
            table: false,
        }
    }
}

/// Where trained model bundles are cached.
#[must_use]
pub fn model_cache_path(program_length: usize, full: bool) -> PathBuf {
    let scale = if full { "full" } else { "small" };
    PathBuf::from("target")
        .join("netsyn-models")
        .join(format!("bundle_len{program_length}_{scale}.json"))
}

/// Loads (or trains and caches) the fitness-model bundle for a length.
///
/// # Panics
///
/// Panics if training or file IO fails — experiment binaries cannot proceed
/// without models.
#[must_use]
pub fn load_bundle(program_length: usize, full: bool, seed: u64) -> Arc<ModelBundle> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB0BA);
    let config = if full {
        let mut config = BundleTrainingConfig::small(program_length);
        config.dataset.num_target_programs = 2_000;
        config.trainer.epochs = 10;
        config
    } else {
        let mut config = BundleTrainingConfig::small(program_length);
        config.dataset.num_target_programs = 60;
        config.trainer.epochs = 2;
        config
    };
    let path = model_cache_path(program_length, full);
    let bundle = ModelBundle::load_or_train(&path, &config, &mut rng)
        .expect("training or loading the fitness-model bundle failed");
    Arc::new(bundle)
}

/// Generates the evaluation suite for one program length.
///
/// # Panics
///
/// Panics if suite generation fails (the generator constraints are standard).
#[must_use]
pub fn generate_suite(config: &HarnessConfig, program_length: usize) -> TestSuite {
    let suite_config = SuiteConfig::small(program_length, config.tasks_per_kind);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ ((program_length as u64) << 8));
    TestSuite::generate(&suite_config, &mut rng).expect("suite generation failed")
}

/// Which methods an experiment evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodSet {
    /// Every method of Figure 4 / Tables 3-4: baselines, NetSyn variants and
    /// the oracle.
    All,
    /// Only the three NetSyn variants (Figures 5 and 6).
    NetSynOnly,
}

/// Builds the method specifications for one program length.
#[must_use]
pub fn build_methods<'a>(
    set: MethodSet,
    program_length: usize,
    bundle: &'a Arc<ModelBundle>,
) -> Vec<MethodSpec<'a>> {
    let mut methods: Vec<MethodSpec<'a>> = Vec::new();
    let netsyn_method = move |choice: FitnessChoice, bundle: &'a Arc<ModelBundle>| {
        MethodSpec::new(choice.label(), move |_task: &SynthesisTask| {
            let config = NetSynConfig::paper_defaults(choice, program_length);
            Box::new(NetSyn::new(config, Some(Arc::clone(bundle)))) as Box<dyn Synthesizer>
        })
    };
    if set == MethodSet::All {
        methods.push(MethodSpec::new("PushGP", move |_task: &SynthesisTask| {
            Box::new(PushGp::new()) as Box<dyn Synthesizer>
        }));
        methods.push(MethodSpec::new("Edit", move |_task: &SynthesisTask| {
            let mut config =
                NetSynConfig::paper_defaults(FitnessChoice::EditDistance, program_length);
            config.ga.mutation_mode = MutationMode::UniformRandom;
            Box::new(NetSyn::new(config, None)) as Box<dyn Synthesizer>
        }));
        methods.push(MethodSpec::new("DeepCoder", {
            let bundle = Arc::clone(bundle);
            move |_task: &SynthesisTask| {
                let guidance = LearnedProbabilityModel::new(bundle.fp.clone());
                Box::new(DeepCoder::new(guidance)) as Box<dyn Synthesizer>
            }
        }));
        methods.push(MethodSpec::new("PCCoder", {
            let bundle = Arc::clone(bundle);
            move |_task: &SynthesisTask| {
                let guidance = LearnedProbabilityModel::new(bundle.fp.clone());
                Box::new(PcCoder::new(guidance)) as Box<dyn Synthesizer>
            }
        }));
        methods.push(MethodSpec::new("RobustFill", {
            let bundle = Arc::clone(bundle);
            move |_task: &SynthesisTask| {
                let guidance = LearnedProbabilityModel::new(bundle.fp.clone());
                Box::new(RobustFill::new(guidance)) as Box<dyn Synthesizer>
            }
        }));
    }
    methods.push(netsyn_method(
        FitnessChoice::NeuralFunctionProbability,
        bundle,
    ));
    methods.push(netsyn_method(
        FitnessChoice::NeuralLongestCommonSubsequence,
        bundle,
    ));
    methods.push(netsyn_method(FitnessChoice::NeuralCommonFunctions, bundle));
    if set == MethodSet::All {
        methods.push(MethodSpec::new(
            "Oracle_LCS|CF",
            move |task: &SynthesisTask| {
                let config = NetSynConfig::paper_defaults(
                    FitnessChoice::OracleCommonFunctions,
                    program_length,
                );
                Box::new(NetSyn::new(config, None).with_oracle_target(task.target.clone()))
                    as Box<dyn Synthesizer>
            },
        ));
    }
    methods
}

/// The decile column headers used by Tables 3 and 4.
#[must_use]
pub fn decile_headers() -> Vec<&'static str> {
    vec![
        "method", "10%", "20%", "30%", "40%", "50%", "60%", "70%", "80%", "90%", "100%",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load_bundle_for_tests() -> Arc<ModelBundle> {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        Arc::new(ModelBundle::train(&BundleTrainingConfig::tiny(2), &mut rng).unwrap())
    }

    #[test]
    fn tiny_config_builds_suite_and_methods() {
        let config = HarnessConfig::tiny();
        let suite = generate_suite(&config, 2);
        assert_eq!(suite.len(), 4);
        let bundle = load_bundle_for_tests();
        let all = build_methods(MethodSet::All, 2, &bundle);
        assert!(all.len() >= 9);
        let netsyn_only = build_methods(MethodSet::NetSynOnly, 2, &bundle);
        assert_eq!(netsyn_only.len(), 3);
        assert_eq!(decile_headers().len(), 11);
    }

    #[test]
    fn model_cache_path_distinguishes_scales() {
        assert_ne!(model_cache_path(5, true), model_cache_path(5, false));
        assert_ne!(model_cache_path(5, false), model_cache_path(7, false));
    }
}
