//! Table 2: ablation of NetSyn's components on length-5 programs — the GA
//! with the learned CF fitness alone, plus BFS / DFS neighborhood search,
//! plus FP-guided mutation, and the full configuration.

use netsyn_bench::{generate_suite, load_bundle, HarnessConfig};
use netsyn_core::prelude::*;
use netsyn_dsl::SynthesisTask;
use std::sync::Arc;

fn ablation_method<'a>(
    name: &str,
    program_length: usize,
    bundle: &'a Arc<ModelBundle>,
    neighborhood: NeighborhoodStrategy,
    mutation: MutationMode,
) -> MethodSpec<'a> {
    let name_owned = name.to_string();
    MethodSpec::new(name_owned, move |_task: &SynthesisTask| {
        let mut config =
            NetSynConfig::paper_defaults(FitnessChoice::NeuralCommonFunctions, program_length);
        config.ga.neighborhood = neighborhood;
        config.ga.mutation_mode = mutation;
        Box::new(NetSyn::new(config, Some(Arc::clone(bundle)))) as Box<dyn Synthesizer>
    })
}

fn main() {
    let config = HarnessConfig::from_args();
    let length = config.lengths.first().copied().unwrap_or(5);
    let suite = generate_suite(&config, length);
    let bundle = load_bundle(length, config.full, config.seed);

    let methods = vec![
        ablation_method(
            "GA+fCF",
            length,
            &bundle,
            NeighborhoodStrategy::Disabled,
            MutationMode::UniformRandom,
        ),
        ablation_method(
            "GA+fCF+NS_BFS",
            length,
            &bundle,
            NeighborhoodStrategy::Bfs,
            MutationMode::UniformRandom,
        ),
        ablation_method(
            "GA+fCF+NS_DFS",
            length,
            &bundle,
            NeighborhoodStrategy::Dfs,
            MutationMode::UniformRandom,
        ),
        ablation_method(
            "GA+fCF+Mutation_FP",
            length,
            &bundle,
            NeighborhoodStrategy::Disabled,
            MutationMode::ProbabilityGuided,
        ),
        ablation_method(
            "GA+fCF+NS_BFS+Mutation_FP",
            length,
            &bundle,
            NeighborhoodStrategy::Bfs,
            MutationMode::ProbabilityGuided,
        ),
    ];

    let mut table = Table::new(
        format!(
            "Table 2: NetSyn component ablation (length {length}, {} programs, {} runs each, cap {})",
            suite.len(),
            config.runs_per_task,
            config.budget_cap
        ),
        &[
            "approach",
            "programs synthesized",
            "avg generations",
            "avg synthesis rate (%)",
        ],
    );
    for method in &methods {
        eprintln!("[tab2_ablation] running {}", method.name);
        let evaluation = evaluate_method(
            method,
            &suite,
            config.budget_cap,
            config.runs_per_task,
            config.seed,
        );
        let summary = evaluation.summary();
        table.push_row(vec![
            summary.method,
            summary.programs_synthesized.to_string(),
            format!("{:.0}", summary.avg_generations),
            format!("{:.0}", summary.avg_synthesis_rate_percent),
        ]);
    }
    println!("{table}");
}
