//! Figure 4(a)–(c) and Table 4: search space used (as a percentage of the
//! candidate cap) versus the percentage of test programs synthesized, for
//! every method and program length.

use netsyn_bench::{
    build_methods, decile_headers, generate_suite, load_bundle, HarnessConfig, MethodSet,
};
use netsyn_core::prelude::*;
use netsyn_core::report::format_percentage;

fn main() {
    let config = HarnessConfig::from_args();
    for &length in &config.lengths {
        let suite = generate_suite(&config, length);
        let bundle = load_bundle(length, config.full, config.seed);
        let methods = build_methods(MethodSet::All, length, &bundle);
        let mut table = Table::new(
            format!(
                "Table 4 / Figure 4(a-c): search space used to synthesize (length {length}, cap {} candidates, {} programs, {} runs each)",
                config.budget_cap,
                suite.len(),
                config.runs_per_task
            ),
            &decile_headers(),
        );
        let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
        for method in &methods {
            eprintln!(
                "[fig4_search_space] length {length}: running {}",
                method.name
            );
            let evaluation = evaluate_method(
                method,
                &suite,
                config.budget_cap,
                config.runs_per_task,
                config.seed,
            );
            let deciles = evaluation.search_space_deciles();
            let mut row = vec![evaluation.method.clone()];
            row.extend(deciles.iter().map(|d| format_percentage(*d)));
            table.push_row(row);
            curves.push((
                evaluation.method.clone(),
                evaluation.sorted_cost_curve(&evaluation.per_task_search_fraction()),
            ));
        }
        println!("{table}");
        if !config.table {
            println!(
                "# Figure 4 curve series (x = % of programs synthesized, y = % of search space)"
            );
            println!("method,percent_synthesized,search_space_percent");
            for (method, curve) in &curves {
                for (i, fraction) in curve.iter().enumerate() {
                    let percent = (i + 1) as f64 / suite.len() as f64 * 100.0;
                    println!("{method},{percent:.1},{:.3}", fraction * 100.0);
                }
            }
        }
        println!();
    }
}
