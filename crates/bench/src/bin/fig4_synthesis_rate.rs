//! Figure 4(d)–(f): the distribution of per-program synthesis rates (what
//! percentage of the K repetitions synthesize each program), the data behind
//! the paper's violin plots.

use netsyn_bench::{build_methods, generate_suite, load_bundle, HarnessConfig, MethodSet};
use netsyn_core::prelude::*;

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let config = HarnessConfig::from_args();
    for &length in &config.lengths {
        let suite = generate_suite(&config, length);
        let bundle = load_bundle(length, config.full, config.seed);
        let methods = build_methods(MethodSet::All, length, &bundle);
        let mut table = Table::new(
            format!(
                "Figure 4(d-f): per-program synthesis-rate distribution (length {length}, {} runs per program)",
                config.runs_per_task
            ),
            &["method", "min", "q25", "median", "q75", "max", "mean"],
        );
        println!("# raw violin data: method,task_index,synthesis_rate_percent");
        for method in &methods {
            eprintln!(
                "[fig4_synthesis_rate] length {length}: running {}",
                method.name
            );
            let evaluation = evaluate_method(
                method,
                &suite,
                config.budget_cap,
                config.runs_per_task,
                config.seed,
            );
            let mut rates = evaluation.per_task_synthesis_rate();
            for (task, rate) in rates.iter().enumerate() {
                println!("{},{task},{:.0}", evaluation.method, rate * 100.0);
            }
            // total_cmp: NaN rates take deterministic extreme positions
            // instead of scrambling the quantiles run to run.
            rates.sort_by(f64::total_cmp);
            let mean = rates.iter().sum::<f64>() / rates.len().max(1) as f64;
            table.push_row(vec![
                evaluation.method.clone(),
                format!("{:.0}%", quantile(&rates, 0.0) * 100.0),
                format!("{:.0}%", quantile(&rates, 0.25) * 100.0),
                format!("{:.0}%", quantile(&rates, 0.5) * 100.0),
                format!("{:.0}%", quantile(&rates, 0.75) * 100.0),
                format!("{:.0}%", quantile(&rates, 1.0) * 100.0),
                format!("{:.0}%", mean * 100.0),
            ]);
        }
        println!();
        println!("{table}");
        println!();
    }
}
