//! Exhaustive validation of the `netsyn_nn::simd` libm ports.
//!
//! Sweeps **every** `f32` bit pattern (all 2^32 of them) and compares the
//! ported `exp`/`expm1`/`tanh` against the host libm's `expf`/`expm1f`/
//! `tanhf` bit for bit. This is the ground-truth check behind the
//! bit-identical `score_batch == score` contract when the SIMD gate sweeps
//! are active; the regular test-suite runs the fast subset (boundary sets
//! plus millions of seeded samples), while this binary is the slow,
//! complete certificate. Run it after touching `crates/nn/src/simd.rs`:
//!
//! ```text
//! cargo run --release -p netsyn-bench --bin simd_validate
//! ```
//!
//! NaN lanes are compared by NaN-ness rather than payload (libm may return
//! a platform-dependent quiet-NaN payload; the fitness pipeline never
//! feeds NaN into the kernels — scores would already be poisoned upstream).

use netsyn_nn::simd::{self, scalar, F32x8, LANES};

/// Sweeps a lane kernel over all 2^32 bit patterns, eight consecutive
/// patterns per call, so the select-form SoA paths (not just the scalar
/// ports) are certified against libm.
fn check_lanes(name: &str, mine: impl Fn(F32x8) -> F32x8, libm: impl Fn(f32) -> f32) -> u64 {
    let mut mismatches = 0u64;
    let mut first: Option<u32> = None;
    let mut bits: u32 = 0;
    loop {
        let mut lanes = [0.0f32; LANES];
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane = f32::from_bits(bits.wrapping_add(l as u32));
        }
        let got = mine(F32x8(lanes));
        for (l, (&lane, &a)) in lanes.iter().zip(got.0.iter()).enumerate() {
            let b = libm(lane);
            if a.to_bits() != b.to_bits() && !(a.is_nan() && b.is_nan()) {
                mismatches += 1;
                if first.is_none() {
                    first = Some(bits.wrapping_add(l as u32));
                }
                if mismatches <= 8 {
                    eprintln!(
                        "{name}: x={:e} (0x{:08x}) mine=0x{:08x} libm=0x{:08x}",
                        lane,
                        bits.wrapping_add(l as u32),
                        a.to_bits(),
                        b.to_bits()
                    );
                }
            }
        }
        if bits.is_multiple_of(0x2000_0000) {
            eprintln!("{name}: {:>3}% swept", (u64::from(bits) * 100) >> 32);
        }
        bits = match bits.checked_add(LANES as u32) {
            Some(b) => b,
            None => break,
        };
    }
    match mismatches {
        0 => println!("{name}: OK (all 2^32 bit patterns match)"),
        n => println!("{name}: {n} MISMATCHES (first at 0x{:08x})", first.unwrap()),
    }
    mismatches
}

fn check(name: &str, mine: impl Fn(f32) -> f32, libm: impl Fn(f32) -> f32) -> u64 {
    let mut mismatches = 0u64;
    let mut first: Option<u32> = None;
    for bits in 0..=u32::MAX {
        let x = f32::from_bits(bits);
        let a = mine(x);
        let b = libm(x);
        if a.to_bits() != b.to_bits() && !(a.is_nan() && b.is_nan()) {
            mismatches += 1;
            if first.is_none() {
                first = Some(bits);
            }
            if mismatches <= 8 {
                eprintln!(
                    "{name}: x={x:e} (0x{bits:08x}) mine=0x{:08x} libm=0x{:08x}",
                    a.to_bits(),
                    b.to_bits()
                );
            }
        }
        if bits.is_multiple_of(0x2000_0000) {
            eprintln!("{name}: {:>3}% swept", (u64::from(bits) * 100) >> 32);
        }
    }
    match mismatches {
        0 => println!("{name}: OK (all 2^32 bit patterns match)"),
        n => println!("{name}: {n} MISMATCHES (first at 0x{:08x})", first.unwrap()),
    }
    mismatches
}

fn main() {
    let mut bad = 0u64;
    bad += check("scalar exp", scalar::exp, f32::exp);
    bad += check("scalar expm1", scalar::expm1, f32::exp_m1);
    bad += check("scalar tanh", scalar::tanh, f32::tanh);
    bad += check_lanes("lane vexp", simd::vexp, f32::exp);
    bad += check_lanes("lane vexpm1", simd::vexpm1, f32::exp_m1);
    bad += check_lanes("lane vtanh", simd::vtanh, f32::tanh);
    bad += check_lanes("lane vsigmoid", simd::vsigmoid, |x| {
        1.0 / (1.0 + (-x).exp())
    });
    if bad > 0 {
        std::process::exit(1);
    }
}
