//! Figure 5: NetSyn's synthesis ability split by fitness function and by
//! program kind (singleton-integer output vs list output). Singleton programs
//! are harder to synthesize for all three NetSyn variants.

use netsyn_bench::{build_methods, generate_suite, load_bundle, HarnessConfig, MethodSet};
use netsyn_core::prelude::*;

fn main() {
    let config = HarnessConfig::from_args();
    for &length in &config.lengths {
        let suite = generate_suite(&config, length);
        let bundle = load_bundle(length, config.full, config.seed);
        let methods = build_methods(MethodSet::NetSynOnly, length, &bundle);
        let mut table = Table::new(
            format!(
                "Figure 5: synthesis rate by program kind (length {length}, {} singleton + {} list programs)",
                config.tasks_per_kind, config.tasks_per_kind
            ),
            &["fitness", "singleton programs", "list programs"],
        );
        println!("# raw per-program data: fitness,task_index,kind,synthesis_rate_percent");
        for method in &methods {
            eprintln!(
                "[fig5_program_kinds] length {length}: running {}",
                method.name
            );
            let evaluation = evaluate_method(
                method,
                &suite,
                config.budget_cap,
                config.runs_per_task,
                config.seed,
            );
            let rates = evaluation.per_task_synthesis_rate();
            for (index, (task, rate)) in suite.tasks.iter().zip(rates.iter()).enumerate() {
                let kind = task
                    .kind()
                    .map(|k| k.to_string())
                    .unwrap_or_else(|| "unknown".to_string());
                println!("{},{index},{kind},{:.0}", evaluation.method, rate * 100.0);
            }
            let (singleton, list) = evaluation.rate_by_kind(&suite);
            table.push_row(vec![
                evaluation.method.clone(),
                format!("{:.0}%", singleton * 100.0),
                format!("{:.0}%", list * 100.0),
            ]);
        }
        println!();
        println!("{table}");
        println!();
    }
}
