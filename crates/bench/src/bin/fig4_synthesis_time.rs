//! Figure 4(g)–(i) and Table 3: wall-clock synthesis time needed to
//! synthesize a growing percentage of the test programs, for every method and
//! program length.
//!
//! Absolute times are implementation- and machine-specific (the paper's
//! numbers come from a Python/TensorFlow stack); the reproduced quantity is
//! the *shape*: which methods reach which percentile within budget and how
//! times grow with program length.

use netsyn_bench::{
    build_methods, decile_headers, generate_suite, load_bundle, HarnessConfig, MethodSet,
};
use netsyn_core::prelude::*;
use netsyn_core::report::format_seconds;

fn main() {
    let config = HarnessConfig::from_args();
    for &length in &config.lengths {
        let suite = generate_suite(&config, length);
        let bundle = load_bundle(length, config.full, config.seed);
        let methods = build_methods(MethodSet::All, length, &bundle);
        let mut headers = vec!["method", "synthesized"];
        headers.extend(decile_headers().into_iter().skip(1));
        let mut table = Table::new(
            format!(
                "Table 3 / Figure 4(g-i): synthesis time (length {length}, cap {} candidates)",
                config.budget_cap
            ),
            &headers,
        );
        for method in &methods {
            eprintln!(
                "[fig4_synthesis_time] length {length}: running {}",
                method.name
            );
            let evaluation = evaluate_method(
                method,
                &suite,
                config.budget_cap,
                config.runs_per_task,
                config.seed,
            );
            let mut row = vec![
                evaluation.method.clone(),
                format!("{:.0}%", evaluation.percent_synthesized() * 100.0),
            ];
            row.extend(evaluation.time_deciles().iter().map(|d| format_seconds(*d)));
            table.push_row(row);
        }
        println!("{table}");
        println!();
    }
}
