//! Figure 7: quality of the learned fitness functions themselves —
//! (a) confusion matrix of the CF classifier, (b) confusion matrix of the LCS
//! classifier, (c) validation accuracy of the FP model over training epochs.

use netsyn_bench::HarnessConfig;
use netsyn_core::prelude::*;
use netsyn_core::Table;
use netsyn_fitness::dataset::{
    generate_dataset, generate_fp_dataset, BalanceMetric, DatasetConfig,
};
use netsyn_fitness::trainer::{train_fitness_model, FitnessModelKind, TrainerConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn confusion_table(title: &str, model: &netsyn_fitness::TrainedFitnessModel) -> Table {
    let confusion = model
        .report
        .confusion
        .as_ref()
        .expect("classification models always produce a confusion matrix");
    let classes = confusion.classes();
    let mut headers: Vec<String> = vec!["actual \\ predicted".to_string()];
    headers.extend((0..classes).map(|c| c.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("{title} (validation accuracy {:.2})", confusion.accuracy()),
        &header_refs,
    );
    for (actual, row) in confusion.row_normalized().iter().enumerate() {
        let mut cells = vec![actual.to_string()];
        cells.extend(row.iter().map(|p| format!("{p:.2}")));
        table.push_row(cells);
    }
    table
}

fn main() {
    let config = HarnessConfig::from_args();
    let length = config.lengths.first().copied().unwrap_or(5);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xF17);

    let mut dataset_config = DatasetConfig::for_length(length);
    let mut trainer_config = TrainerConfig::small();
    if config.full {
        dataset_config.num_target_programs = 5_000;
        trainer_config.epochs = 40;
    } else {
        dataset_config.num_target_programs = 120;
        trainer_config.epochs = 6;
    }

    eprintln!(
        "[fig7] training CF model ({} targets)",
        dataset_config.num_target_programs
    );
    let cf_samples =
        generate_dataset(&dataset_config, BalanceMetric::CommonFunctions, &mut rng).unwrap();
    let cf_model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &cf_samples,
        length,
        &trainer_config,
        &mut rng,
    );
    println!(
        "{}",
        confusion_table("Figure 7(a): f_CF confusion matrix", &cf_model)
    );
    println!();

    eprintln!("[fig7] training LCS model");
    let lcs_samples = generate_dataset(
        &dataset_config,
        BalanceMetric::LongestCommonSubsequence,
        &mut rng,
    )
    .unwrap();
    let lcs_model = train_fitness_model(
        FitnessModelKind::LongestCommonSubsequence,
        &lcs_samples,
        length,
        &trainer_config,
        &mut rng,
    );
    println!(
        "{}",
        confusion_table("Figure 7(b): f_LCS confusion matrix", &lcs_model)
    );
    println!();

    eprintln!("[fig7] training FP model");
    let mut fp_dataset = dataset_config.clone();
    fp_dataset.num_target_programs *= length + 1;
    let fp_samples = generate_fp_dataset(&fp_dataset, &mut rng).unwrap();
    let fp_model = train_fitness_model(
        FitnessModelKind::FunctionProbability,
        &fp_samples,
        length,
        &trainer_config,
        &mut rng,
    );
    let mut table = Table::new(
        "Figure 7(c): f_FP validation accuracy over training epochs",
        &["epoch", "train loss", "validation accuracy"],
    );
    for epoch in &fp_model.report.epochs {
        table.push_row(vec![
            epoch.epoch.to_string(),
            format!("{:.4}", epoch.train_loss),
            format!("{:.3}", epoch.validation_accuracy),
        ]);
    }
    println!("{table}");

    let _ = SuiteConfig::paper(length);
}
