//! Figure 6: synthesis rate broken down by DSL function, for the CF-based and
//! FP-based fitness functions. Functions 1–11 produce a singleton integer and
//! drag down the synthesis rate of any program containing them.

use netsyn_bench::{build_methods, generate_suite, load_bundle, HarnessConfig, MethodSet};
use netsyn_core::prelude::*;

type PerFunctionRates = Vec<(Function, Option<f64>)>;

fn main() {
    let config = HarnessConfig::from_args();
    for &length in &config.lengths {
        let suite = generate_suite(&config, length);
        let bundle = load_bundle(length, config.full, config.seed);
        let methods: Vec<_> = build_methods(MethodSet::NetSynOnly, length, &bundle)
            .into_iter()
            .filter(|m| m.name == "NetSyn_CF" || m.name == "NetSyn_FP")
            .collect();
        let mut table = Table::new(
            format!("Figure 6: synthesis rate per DSL function (length {length})"),
            &[
                "function id",
                "function",
                "NetSyn_CF",
                "NetSyn_FP",
                "returns int",
            ],
        );
        let mut per_method: Vec<(String, PerFunctionRates)> = Vec::new();
        for method in &methods {
            eprintln!(
                "[fig6_per_function] length {length}: running {}",
                method.name
            );
            let evaluation = evaluate_method(
                method,
                &suite,
                config.budget_cap,
                config.runs_per_task,
                config.seed,
            );
            per_method.push((
                evaluation.method.clone(),
                evaluation.rate_by_function(&suite),
            ));
        }
        let format_rate = |value: &Option<f64>| match value {
            None => "n/a".to_string(),
            Some(rate) => format!("{:.0}%", rate * 100.0),
        };
        for (index, function) in suite.domain.vocab().iter().enumerate() {
            let cf = per_method
                .iter()
                .find(|(name, _)| name == "NetSyn_CF")
                .map(|(_, rates)| format_rate(&rates[index].1))
                .unwrap_or_else(|| "n/a".to_string());
            let fp = per_method
                .iter()
                .find(|(name, _)| name == "NetSyn_FP")
                .map(|(_, rates)| format_rate(&rates[index].1))
                .unwrap_or_else(|| "n/a".to_string());
            table.push_row(vec![
                function.id().to_string(),
                function.to_string(),
                cf,
                fp,
                if function.returns_int() { "yes" } else { "no" }.to_string(),
            ]);
        }
        println!("{table}");
        println!();
    }
}
