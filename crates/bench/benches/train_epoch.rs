//! Benchmarks of the batched SIMD training path against the scalar
//! per-sample reference loop (`BENCH_train.json` records these).
//!
//! Both sides run the *same* trainer — identical dataset, shuffles, loss and
//! optimizer trajectory, byte-identical resulting checkpoints (pinned by
//! `batched_trainer_matches_reference_byte_for_byte`) — and differ only in
//! the kernels under each minibatch: `train_fitness_model` drives whole
//! chunks through `FitnessNet::forward_batch_train` / `backward_batch`
//! (time-major gather-free LSTM batching, batched outer-product weight
//! gradients), while `train_fitness_model_reference` forwards and
//! backpropagates one sample at a time. The validation split is disabled so
//! the measurement isolates the training sweep itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig, FitnessSample};
use netsyn_fitness::trainer::{
    train_fitness_model, train_fitness_model_reference, FitnessModelKind, TrainerConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const PROGRAM_LENGTH: usize = 5;

fn dataset() -> Vec<FitnessSample> {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let mut config = DatasetConfig::for_length(PROGRAM_LENGTH);
    config.num_target_programs = 6;
    config.examples_per_program = 2;
    generate_dataset(&config, BalanceMetric::CommonFunctions, &mut rng)
        .expect("dataset generation succeeds")
}

fn trainer_config() -> TrainerConfig {
    let mut config = TrainerConfig::small();
    config.epochs = 1;
    config.batch_size = 16;
    // Isolate the training sweep: no held-out split, so neither side spends
    // time in the (per-sample, inference-path) validation scorer.
    config.validation_fraction = 0.0;
    config
}

fn bench_train_epoch(c: &mut Criterion) {
    let samples = dataset();
    let config = trainer_config();
    let mut group = c.benchmark_group("train_epoch");
    group.sample_size(10);
    group.bench_function("batched_simd", |bench| {
        bench.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            black_box(train_fitness_model(
                FitnessModelKind::CommonFunctions,
                black_box(&samples),
                PROGRAM_LENGTH,
                &config,
                &mut rng,
            ))
        });
    });
    group.bench_function("scalar_reference", |bench| {
        bench.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            black_box(train_fitness_model_reference(
                FitnessModelKind::CommonFunctions,
                black_box(&samples),
                PROGRAM_LENGTH,
                &config,
                &mut rng,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_train_epoch);
criterion_main!(benches);
