//! Benchmarks of the persistent trace-value encoding cache under the batched
//! scoring hot path (`BENCH_encode_cache.json` records these against the
//! `BENCH_simd.json` cold record).
//!
//! The workload matches the long-standing headline record (nn_kernels'
//! `batched_vs_single/score_batch_128`): a trained NN-CF fitness model
//! scores a 128-candidate population of random length-5 programs against a
//! 5-example specification in one batched call. Three cache states are
//! measured:
//!
//! * `cold` — a fresh [`TraceEncodingCache`] per call: every distinct trace
//!   value runs through the step encoder, as before this cache existed;
//! * `warm_generation` — the shard has seen *previous generations* of the
//!   same search (each measured call scores a never-before-seen offspring
//!   population bred from the previous one by point mutation, exactly the
//!   GA's recurrence structure);
//! * `warm_steady` — the shard has seen this very population (the
//!   cross-run upper bound: only the non-step-encoder stages remain).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsyn_dsl::{Function, Generator, GeneratorConfig, Program};
use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
use netsyn_fitness::trainer::{train_fitness_model, FitnessModelKind, TrainerConfig};
use netsyn_fitness::{FitnessFunction, LearnedFitness, TraceEncodingCache};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const POPULATION: usize = 128;
/// Pre-generated offspring generations. Sized for hosts far faster than the
/// recorded one (the criterion shim calibrates its batch to ~5 ms, so more
/// iterations run on faster hosts); the benchmark *panics* if the pool is
/// ever exhausted rather than silently re-scoring already-cached
/// generations, which would inflate the warm-generation number into the
/// warm-steady one.
const GENERATIONS: usize = 2048;

fn bench_encode_cache(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut dataset_config = DatasetConfig::for_length(5);
    dataset_config.num_target_programs = 4;
    dataset_config.examples_per_program = 2;
    let samples = generate_dataset(&dataset_config, BalanceMetric::CommonFunctions, &mut rng)
        .expect("dataset generation succeeds");
    let mut trainer_config = TrainerConfig::small();
    trainer_config.epochs = 1;
    let model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &samples,
        5,
        &trainer_config,
        &mut rng,
    );
    let fitness = LearnedFitness::new(model);

    let generator = Generator::new(GeneratorConfig::for_length(5));
    let target = generator
        .program(&mut rng)
        .expect("program generation succeeds");
    let spec = generator.spec_for(&target, 5, &mut rng);
    let population: Vec<Program> = (0..POPULATION)
        .map(|_| generator.random_program(&mut rng))
        .collect();

    // A chain of offspring generations: each is the previous population
    // with one point mutation per candidate — the same recurrence structure
    // the GA's breeding produces, so consecutive generations share most of
    // their trace values.
    let mut offspring: Vec<Vec<Program>> = Vec::with_capacity(GENERATIONS);
    let mut parent = population.clone();
    for _ in 0..GENERATIONS {
        let next: Vec<Program> = parent
            .iter()
            .map(|program| {
                let position = rng.gen_range(0..program.len());
                let replacement = Function::ALL[rng.gen_range(0..Function::COUNT)];
                program.with_replaced(position, replacement)
            })
            .collect();
        offspring.push(next.clone());
        parent = next;
    }

    let mut group = c.benchmark_group("encode_cache");
    group.sample_size(10);

    // Cold: a fresh shard per call — the pre-cache behavior, for the
    // apples-to-apples comparison with the BENCH_simd.json record.
    group.bench_function(format!("score_batch_cold_{POPULATION}"), |bench| {
        bench.iter(|| {
            black_box(fitness.score_batch_cached(
                black_box(&population),
                &spec,
                &TraceEncodingCache::new(),
            ))
        });
    });

    // Warm generation: the shard starts warmed by the base population, and
    // every call scores the *next* never-before-seen offspring generation
    // (the pool exhausting mid-measurement would silently turn this into
    // the warm-steady benchmark — fail loudly instead).
    let generation_shard = TraceEncodingCache::new();
    let _ = fitness.score_batch_cached(&population, &spec, &generation_shard);
    let mut next_generation = 0usize;
    group.bench_function(
        format!("score_batch_warm_generation_{POPULATION}"),
        |bench| {
            bench.iter(|| {
                let generation = offspring.get(next_generation).unwrap_or_else(|| {
                    panic!(
                        "offspring pool exhausted after {GENERATIONS} generations: raise \
                         GENERATIONS so every measured call scores an unseen population"
                    )
                });
                next_generation += 1;
                black_box(fitness.score_batch_cached(
                    black_box(generation),
                    &spec,
                    &generation_shard,
                ))
            });
        },
    );

    // Warm steady state: the shard has seen this exact population.
    let steady_shard = TraceEncodingCache::new();
    let _ = fitness.score_batch_cached(&population, &spec, &steady_shard);
    group.bench_function(format!("score_batch_warm_steady_{POPULATION}"), |bench| {
        bench.iter(|| {
            black_box(fitness.score_batch_cached(black_box(&population), &spec, &steady_shard))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_encode_cache);
criterion_main!(benches);
