//! Multi-core scaling of the population-scoring hot path under the
//! work-stealing pool (`BENCH_parallel_scaling.json` records these per
//! `NETSYN_POOL_THREADS` value against the `BENCH_encode_cache.json`
//! 1-thread record).
//!
//! The pool size is fixed at first use per process, so each thread count is
//! measured by a separate run:
//!
//! ```text
//! NETSYN_POOL_THREADS=1 cargo bench -p netsyn-bench --bench parallel_scaling
//! NETSYN_POOL_THREADS=4 cargo bench -p netsyn-bench --bench parallel_scaling
//! ```
//!
//! Two workloads:
//!
//! * `score_batch_cold` — the long-standing headline record (a trained
//!   NN-CF fitness scores a 128-candidate population of random length-5
//!   programs against a 5-example spec in one batched call, fresh trace
//!   shard per call). Parallelism here is *inside* the batched kernels
//!   (matmul rows, LSTM gate sweeps), whose chunks the pool now steals.
//! * `concurrent_runs_4x` — four concurrent synthesis attempts of the same
//!   task (the evaluation harness's task×run fan-out) score four disjoint
//!   64-candidate populations through one shared `SpecScores` shard via the
//!   claim protocol, each attempt nesting into the batched kernels. This
//!   exercises exactly the nesting the old shim ran inline.
//!
//! Scores are bit-identical whatever the pool size (asserted against a
//! 1-thread-equivalent sequential pass at startup), so the thread-count
//! determinism matrix in `crates/ga/tests/warm_cache_determinism.rs` is the
//! correctness side of this benchmark.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsyn_dsl::{Generator, GeneratorConfig};
use netsyn_dsl::{IoSpec, Program};
use netsyn_fitness::cache::SpecScores;
use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
use netsyn_fitness::trainer::{train_fitness_model, FitnessModelKind, TrainerConfig};
use netsyn_fitness::{FitnessFunction, LearnedFitness, TraceEncodingCache};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

const POPULATION: usize = 128;
const CONCURRENT_RUNS: usize = 4;

struct Workload {
    fitness: LearnedFitness,
    spec: IoSpec,
    population: Vec<Program>,
    /// Disjoint per-"run" sub-populations for the concurrent workload.
    run_populations: Vec<Vec<Program>>,
}

fn workload() -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut dataset_config = DatasetConfig::for_length(5);
    dataset_config.num_target_programs = 4;
    dataset_config.examples_per_program = 2;
    let samples = generate_dataset(&dataset_config, BalanceMetric::CommonFunctions, &mut rng)
        .expect("dataset generation succeeds");
    let mut trainer_config = TrainerConfig::small();
    trainer_config.epochs = 1;
    let model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &samples,
        5,
        &trainer_config,
        &mut rng,
    );
    let fitness = LearnedFitness::new(model);
    let generator = Generator::new(GeneratorConfig::for_length(5));
    let target = generator
        .program(&mut rng)
        .expect("program generation succeeds");
    let spec = generator.spec_for(&target, 5, &mut rng);
    let population: Vec<Program> = (0..POPULATION)
        .map(|_| generator.random_program(&mut rng))
        .collect();
    let run_populations: Vec<Vec<Program>> = (0..CONCURRENT_RUNS)
        .map(|_| {
            (0..POPULATION / 2)
                .map(|_| generator.random_program(&mut rng))
                .collect()
        })
        .collect();
    Workload {
        fitness,
        spec,
        population,
        run_populations,
    }
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let w = workload();
    let threads = rayon::current_num_threads();

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);

    // The headline workload: one batched 128-candidate scoring call, cold
    // trace shard (identical to encode_cache's `score_batch_cold_128`, so
    // the 1-thread number is directly comparable to that record).
    group.bench_function(
        format!("score_batch_cold_{POPULATION}_t{threads}"),
        |bench| {
            bench.iter(|| {
                black_box(w.fitness.score_batch_cached(
                    black_box(&w.population),
                    &w.spec,
                    &TraceEncodingCache::new(),
                ))
            });
        },
    );

    // The harness-shaped workload: K concurrent runs of one task share a
    // SpecScores shard; each run claims its own population and scores it
    // with a nested batched call. With work stealing the outer fan-out and
    // the inner kernels both parallelize; at 1 thread everything runs
    // inline — same results either way.
    group.bench_function(
        format!("concurrent_runs_{CONCURRENT_RUNS}x_t{threads}"),
        |bench| {
            bench.iter(|| {
                let shard = SpecScores::default();
                let traces = TraceEncodingCache::new();
                let totals: Vec<f64> = w
                    .run_populations
                    .par_iter()
                    .map(|population| {
                        let claims = shard.claim_many(population);
                        let to_score: Vec<Program> = claims
                            .iter()
                            .zip(population)
                            .filter(|(claim, _)| {
                                matches!(claim, netsyn_fitness::cache::Claim::Claimed)
                            })
                            .map(|(_, program)| program.clone())
                            .collect();
                        let scores = w.fitness.score_batch_cached(&to_score, &w.spec, &traces);
                        shard.publish_many(&to_score, &scores);
                        scores.iter().sum()
                    })
                    .collect();
                black_box(totals)
            });
        },
    );

    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
