//! Micro-benchmarks of the string-transformation domain: program generation
//! over the string vocabulary, string-program interpretation, and a short
//! oracle-guided GA synthesis searching the string operator set.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsyn_dsl::{DomainId, Generator, GeneratorConfig};
use netsyn_fitness::{ClosenessMetric, OracleFitness};
use netsyn_ga::{GaConfig, GeneticEngine, NeighborhoodStrategy, SearchBudget};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_string_domain(c: &mut Criterion) {
    let mut group = c.benchmark_group("string_domain");
    group.sample_size(10);

    group.bench_function("generate_task_len3", |b| {
        let generator = Generator::new(GeneratorConfig::for_domain(DomainId::Str, 3));
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        b.iter(|| black_box(generator.task(5, &mut rng).unwrap()));
    });

    group.bench_function("spec_check_batch_128_len3", |b| {
        let generator = Generator::new(GeneratorConfig::for_domain(DomainId::Str, 3));
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let target = generator.program(&mut rng).unwrap();
        let spec = generator.spec_for(&target, 5, &mut rng);
        let candidates: Vec<_> = (0..128)
            .map(|_| generator.random_program(&mut rng))
            .collect();
        b.iter(|| {
            let mut found = 0usize;
            for candidate in &candidates {
                if spec.is_satisfied_by(candidate) {
                    found += 1;
                }
            }
            black_box(found)
        });
    });

    group.bench_function("oracle_synthesis_len2", |b| {
        let generator = Generator::new(GeneratorConfig::for_domain(DomainId::Str, 2));
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let target = generator.program(&mut rng).unwrap();
        let spec = generator.spec_for(&target, 5, &mut rng);
        let mut config = GaConfig::small(2);
        config.domain = DomainId::Str;
        config.neighborhood = NeighborhoodStrategy::Bfs;
        let engine = GeneticEngine::new(config);
        let oracle = OracleFitness::new(target, ClosenessMetric::CommonFunctions);
        b.iter(|| {
            let mut budget = SearchBudget::new(100_000);
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            black_box(engine.synthesize(&spec, &oracle, &mut budget, &mut rng))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_string_domain);
criterion_main!(benches);
