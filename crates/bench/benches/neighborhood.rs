//! Micro-benchmarks of the restricted local neighborhood search (Algorithm 1):
//! BFS and DFS flavors over the top genes of a population.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsyn_dsl::{DomainId, Generator, GeneratorConfig};
use netsyn_fitness::{ClosenessMetric, OracleFitness, SpecScores, TraceEncodingCache};
use netsyn_ga::{neighborhood, NeighborhoodStrategy, SearchBudget};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_neighborhood(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighborhood_search");
    group.sample_size(10);
    let generator = Generator::new(GeneratorConfig::for_length(5));
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let target = generator.program(&mut rng).unwrap();
    let spec = generator.spec_for(&target, 5, &mut rng);
    let oracle = OracleFitness::new(target, ClosenessMetric::CommonFunctions);
    // Five genes far from the target: the whole neighborhood is explored.
    let genes: Vec<_> = (0..5).map(|_| generator.random_program(&mut rng)).collect();

    for (label, strategy) in [
        ("bfs_top5_len5", NeighborhoodStrategy::Bfs),
        ("dfs_top5_len5", NeighborhoodStrategy::Dfs),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                // Fresh memo/encoding shards per iteration: this benchmark
                // measures the cold search (the warm path is covered by the
                // encode_cache benches).
                let mut budget = SearchBudget::new(1_000_000);
                black_box(neighborhood::search(
                    black_box(&genes),
                    &spec,
                    strategy,
                    DomainId::List,
                    &oracle,
                    &mut budget,
                    &SpecScores::default(),
                    &TraceEncodingCache::new(),
                    None,
                    None,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_neighborhood);
criterion_main!(benches);
