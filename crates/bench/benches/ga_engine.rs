//! Micro-benchmarks of the genetic-algorithm engine: one evolution round
//! (selection + crossover + mutation + dead-code regeneration) and a short
//! end-to-end oracle-guided synthesis.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsyn_dsl::{Generator, GeneratorConfig, IoSpec};
use netsyn_fitness::{ClosenessMetric, EditDistanceFitness, OracleFitness};
use netsyn_ga::{GaConfig, GeneticEngine, NeighborhoodStrategy, SearchBudget};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sample_spec(length: usize, seed: u64) -> (netsyn_dsl::Program, IoSpec) {
    let generator = Generator::new(GeneratorConfig::for_length(length));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let target = generator.program(&mut rng).unwrap();
    let spec = generator.spec_for(&target, 5, &mut rng);
    (target, spec)
}

fn bench_ga(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga_engine");
    group.sample_size(10);

    // A bounded number of generations with the hand-crafted edit-distance
    // fitness: measures the cost of the evolutionary machinery itself.
    group.bench_function("evolve_20_generations_pop100_len5", |b| {
        let (_, spec) = sample_spec(5, 11);
        let mut config = GaConfig::paper_defaults(5);
        config.max_generations = 20;
        config.neighborhood = NeighborhoodStrategy::Disabled;
        let engine = GeneticEngine::new(config);
        let fitness = EditDistanceFitness::new();
        b.iter(|| {
            let mut budget = SearchBudget::new(1_000_000);
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            black_box(engine.synthesize(&spec, &fitness, &mut budget, &mut rng))
        });
    });

    // End-to-end synthesis of a length-3 program with the oracle fitness.
    group.bench_function("oracle_synthesis_len3", |b| {
        let (target, spec) = sample_spec(3, 12);
        let engine = GeneticEngine::new(GaConfig::small(3));
        let oracle = OracleFitness::new(target, ClosenessMetric::CommonFunctions);
        b.iter(|| {
            let mut budget = SearchBudget::new(200_000);
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            black_box(engine.synthesize(&spec, &oracle, &mut budget, &mut rng))
        });
    });

    group.bench_function("spec_check_batch_128_len5", |b| {
        let (_, spec) = sample_spec(5, 13);
        let generator = Generator::new(GeneratorConfig::for_length(5));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let candidates: Vec<_> = (0..128)
            .map(|_| generator.random_program(&mut rng))
            .collect();
        b.iter(|| {
            let mut found = 0usize;
            for candidate in &candidates {
                if spec.is_satisfied_by(candidate) {
                    found += 1;
                }
            }
            black_box(found)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ga);
criterion_main!(benches);
