//! Micro-benchmarks of the neural-network substrate and the full fitness
//! network: matrix multiplication, LSTM forward/backward, and the NN-FF
//! forward pass that dominates NetSyn's per-candidate cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsyn_dsl::{Generator, GeneratorConfig, Program};
use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
use netsyn_fitness::encoding::{encode_candidate, encode_spec};
use netsyn_fitness::trainer::{train_fitness_model, FitnessModelKind, TrainerConfig};
use netsyn_fitness::{
    EncodingConfig, FitnessFunction, FitnessNet, FitnessNetConfig, LearnedFitness,
    TraceEncodingCache,
};
use netsyn_nn::{Lstm, Matrix, Parameterized};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Micro-benchmarks of the SIMD transcendental kernels against the scalar
/// libm calls they replace (`BENCH_simd.json` records the ratios). The
/// inputs mimic LSTM gate pre-activations: dense in [-8, 8].
fn bench_simd_kernels(c: &mut Criterion) {
    use netsyn_nn::simd;
    let mut group = c.benchmark_group("simd_kernels");
    group.sample_size(20);
    let xs: Vec<f32> = (0..4096).map(|i| ((i as f32) * 0.13).sin() * 8.0).collect();
    let mut buf = xs.clone();
    group.bench_function("vexp_4096", |bench| {
        bench.iter(|| {
            buf.copy_from_slice(&xs);
            simd::vexp_slice(black_box(&mut buf));
        });
    });
    group.bench_function("libm_exp_4096", |bench| {
        bench.iter(|| {
            buf.copy_from_slice(&xs);
            for x in buf.iter_mut() {
                *x = black_box(x.exp());
            }
        });
    });
    group.bench_function("vtanh_4096", |bench| {
        bench.iter(|| {
            buf.copy_from_slice(&xs);
            simd::vtanh_slice(black_box(&mut buf));
        });
    });
    group.bench_function("libm_tanh_4096", |bench| {
        bench.iter(|| {
            buf.copy_from_slice(&xs);
            for x in buf.iter_mut() {
                *x = black_box(x.tanh());
            }
        });
    });
    group.bench_function("vsigmoid_4096", |bench| {
        bench.iter(|| {
            buf.copy_from_slice(&xs);
            simd::vsigmoid_slice(black_box(&mut buf));
        });
    });
    group.bench_function("scalar_sigmoid_4096", |bench| {
        bench.iter(|| {
            buf.copy_from_slice(&xs);
            for x in buf.iter_mut() {
                *x = black_box(1.0 / (1.0 + (-*x).exp()));
            }
        });
    });
    group.finish();
}

fn bench_nn(c: &mut Criterion) {
    bench_simd_kernels(c);
    let mut group = c.benchmark_group("nn_kernels");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(3);

    let a = Matrix::xavier(64, 64, &mut rng);
    let b = Matrix::xavier(64, 64, &mut rng);
    group.bench_function("matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(black_box(&b))));
    });

    let mut lstm = Lstm::new(16, 32, &mut rng);
    let sequence: Vec<Vec<f32>> = (0..12)
        .map(|t| {
            (0..16)
                .map(|d| ((t * 16 + d) as f32 * 0.01).sin())
                .collect()
        })
        .collect();
    group.bench_function("lstm_forward_12x16_h32", |bench| {
        bench.iter(|| black_box(lstm.forward(black_box(&sequence))));
    });
    group.bench_function("lstm_forward_backward_12x16_h32", |bench| {
        bench.iter(|| {
            let (h, cache) = lstm.forward(black_box(&sequence));
            let grads = lstm.backward(&cache, &h);
            lstm.zero_grad();
            black_box(grads)
        });
    });

    // The dominant cost inside NetSyn: one NN-FF forward pass per candidate.
    let net = FitnessNet::new(FitnessNetConfig::small(6), EncodingConfig::new(), &mut rng);
    let generator = Generator::new(GeneratorConfig::for_length(5));
    let target = generator.program(&mut rng).unwrap();
    let spec = generator.spec_for(&target, 5, &mut rng);
    let candidate = generator.random_program(&mut rng);
    let spec_encoding = encode_spec(net.encoding(), &spec);
    let encoded = encode_candidate(net.encoding(), &spec, &candidate);
    group.bench_function("fitness_net_forward_len5_m5", |bench| {
        bench.iter(|| {
            black_box(
                net.predict(black_box(&spec_encoding), black_box(&encoded))
                    .unwrap(),
            )
        });
    });
    group.bench_function("encode_candidate_len5_m5", |bench| {
        bench.iter(|| black_box(encode_candidate(net.encoding(), &spec, &candidate)));
    });
    group.finish();

    bench_batched_vs_single(c);
}

/// The headline comparison for the batched-inference work: scoring a
/// population-sized batch of candidates with one `score_batch` call versus
/// the seed's per-candidate `score` loop, on a trained CF fitness model.
/// `BENCH_batch_inference.json` records the measured ratio.
fn bench_batched_vs_single(c: &mut Criterion) {
    const POPULATION: usize = 128;
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut dataset_config = DatasetConfig::for_length(5);
    dataset_config.num_target_programs = 4;
    dataset_config.examples_per_program = 2;
    let samples = generate_dataset(&dataset_config, BalanceMetric::CommonFunctions, &mut rng)
        .expect("dataset generation succeeds");
    let mut trainer_config = TrainerConfig::small();
    trainer_config.epochs = 1;
    let model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &samples,
        5,
        &trainer_config,
        &mut rng,
    );
    let fitness = LearnedFitness::new(model);

    let generator = Generator::new(GeneratorConfig::for_length(5));
    let target = generator
        .program(&mut rng)
        .expect("program generation succeeds");
    let spec = generator.spec_for(&target, 5, &mut rng);
    let population: Vec<Program> = (0..POPULATION)
        .map(|_| generator.random_program(&mut rng))
        .collect();

    let mut group = c.benchmark_group("batched_vs_single");
    group.sample_size(10);
    group.bench_function(format!("single_scores_{POPULATION}"), |bench| {
        bench.iter(|| {
            let scores: Vec<f64> = population
                .iter()
                .map(|candidate| fitness.score(candidate, &spec))
                .collect();
            black_box(scores)
        });
    });
    group.bench_function(format!("score_batch_{POPULATION}"), |bench| {
        // A fresh trace-encoding shard per call keeps this the *cold*
        // batched pass it has always measured (plain `score_batch` now
        // reuses the instance's trace memo across calls — the warm numbers
        // live in the encode_cache bench).
        bench.iter(|| {
            black_box(fitness.score_batch_cached(
                black_box(&population),
                &spec,
                &TraceEncodingCache::new(),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
