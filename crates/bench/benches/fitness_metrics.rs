//! Micro-benchmarks of the fitness metrics and hand-crafted fitness
//! functions: CF, LCS, output edit distance and the FP probability-map score.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsyn_dsl::{Generator, GeneratorConfig, IoSpec, Program, Value};
use netsyn_fitness::metrics::{common_functions, longest_common_subsequence, output_edit_distance};
use netsyn_fitness::{EditDistanceFitness, FitnessFunction, ProbabilityMap};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sample_programs(length: usize, count: usize) -> Vec<Program> {
    let generator = Generator::new(GeneratorConfig::for_length(length));
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    (0..count)
        .map(|_| generator.program(&mut rng).expect("generation succeeds"))
        .collect()
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("fitness_metrics");
    group.sample_size(20);
    let programs = sample_programs(10, 64);
    group.bench_function("common_functions_length_10", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = &programs[i % programs.len()];
            let z = &programs[(i + 1) % programs.len()];
            i += 1;
            black_box(common_functions(a, z))
        });
    });
    group.bench_function("lcs_length_10", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = &programs[i % programs.len()];
            let z = &programs[(i + 1) % programs.len()];
            i += 1;
            black_box(longest_common_subsequence(a, z))
        });
    });
    group.bench_function("output_edit_distance", |b| {
        let a = Value::List((0..16).collect());
        let z = Value::List((0..16).rev().collect());
        b.iter(|| black_box(output_edit_distance(black_box(&a), black_box(&z))));
    });

    let programs5 = sample_programs(5, 16);
    let spec = IoSpec::from_program(
        &programs5[0],
        &[
            vec![Value::List(vec![3, -1, 7, 0, 2, 9, -5])],
            vec![Value::List(vec![1, 2, 3, 4])],
            vec![Value::List(vec![-9, 8, -7, 6])],
            vec![Value::List(vec![5, 5, 5])],
            vec![Value::List(vec![0, -1, -2, -3, 10])],
        ],
    );
    group.bench_function("edit_distance_fitness_score", |b| {
        let fitness = EditDistanceFitness::new();
        let mut i = 0usize;
        b.iter(|| {
            let candidate = &programs5[i % programs5.len()];
            i += 1;
            black_box(fitness.score(candidate, &spec))
        });
    });
    group.bench_function("probability_map_score", |b| {
        let map = ProbabilityMap::from_target(&programs5[0], 0.05);
        let mut i = 0usize;
        b.iter(|| {
            let candidate = &programs5[i % programs5.len()];
            i += 1;
            black_box(map.score(candidate))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
