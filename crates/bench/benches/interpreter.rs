//! Micro-benchmarks of the DSL interpreter: single-program execution, trace
//! collection, specification checking and dead-code analysis.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsyn_dsl::dce::{effective_length, eliminate_dead_code};
use netsyn_dsl::{Generator, GeneratorConfig, IoSpec, Program, Type, Value};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sample_programs(length: usize, count: usize) -> Vec<Program> {
    let generator = Generator::new(GeneratorConfig::for_length(length));
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    (0..count)
        .map(|_| generator.program(&mut rng).expect("generation succeeds"))
        .collect()
}

fn sample_input() -> Vec<Value> {
    vec![Value::List(vec![-7, 12, 3, 0, -2, 9, 5, 1, -11, 6, 4, 8])]
}

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(20);
    let input = sample_input();
    for length in [5usize, 10] {
        let programs = sample_programs(length, 64);
        group.bench_function(format!("run_length_{length}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let program = &programs[i % programs.len()];
                i += 1;
                black_box(program.run(black_box(&input)).unwrap())
            });
        });
    }
    let programs = sample_programs(5, 64);
    let spec = IoSpec::from_program(
        &programs[0],
        &[sample_input(), vec![Value::List(vec![1, -2, 3, -4, 5])]],
    );
    group.bench_function("spec_check_length_5", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let program = &programs[i % programs.len()];
            i += 1;
            black_box(spec.is_satisfied_by(black_box(program)))
        });
    });
    group.bench_function("dead_code_analysis_length_10", |b| {
        let programs = sample_programs(10, 64);
        let mut i = 0usize;
        b.iter(|| {
            let program = &programs[i % programs.len()];
            i += 1;
            black_box((
                effective_length(program, &[Type::List]),
                eliminate_dead_code(program, &[Type::List]).len(),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_interpreter);
criterion_main!(benches);
