//! Benchmarks of the zero-copy encoding pipeline: spec encoding,
//! arena-backed candidate-trace encoding throughput, and an end-to-end
//! one-generation synthesize run driving the whole
//! encode → batch-infer → breed loop.
//!
//! `BENCH_encoding_refactor.json` records these numbers against the
//! pre-refactor `BENCH_batch_inference.json` baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsyn_dsl::{Generator, GeneratorConfig, Program};
use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
use netsyn_fitness::encoding::{encode_candidates, encode_spec};
use netsyn_fitness::trainer::{train_fitness_model, FitnessModelKind, TrainerConfig};
use netsyn_fitness::{EncodingConfig, LearnedFitness};
use netsyn_ga::{GaConfig, GeneticEngine, NeighborhoodStrategy, SearchBudget};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const POPULATION: usize = 128;

fn bench_encoding(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let config = EncodingConfig::new();
    let generator = Generator::new(GeneratorConfig::for_length(5));
    let target = generator
        .program(&mut rng)
        .expect("program generation succeeds");
    let spec = generator.spec_for(&target, 5, &mut rng);
    let population: Vec<Program> = (0..POPULATION)
        .map(|_| generator.random_program(&mut rng))
        .collect();

    let mut group = c.benchmark_group("encoding");
    group.sample_size(20);
    group.bench_function("encode_spec_m5", |bench| {
        bench.iter(|| black_box(encode_spec(&config, black_box(&spec))));
    });
    // The arena-backed trace-encoding hot path: every candidate of a
    // population-sized batch is run on every spec example and its trace
    // tokenized, with one interpreter arena shared across all runs.
    group.bench_function(format!("encode_candidates_{POPULATION}"), |bench| {
        bench.iter(|| black_box(encode_candidates(&config, &spec, black_box(&population))));
    });
    group.finish();

    bench_one_generation(c);
}

/// End-to-end population scoring inside the engine: one full `synthesize`
/// call capped at a single generation — initial-population sampling and
/// satisfaction checks, one batched fitness pass over the population
/// through the trained network, and the breeding step.
fn bench_one_generation(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut dataset_config = DatasetConfig::for_length(5);
    dataset_config.num_target_programs = 4;
    dataset_config.examples_per_program = 2;
    let samples = generate_dataset(&dataset_config, BalanceMetric::CommonFunctions, &mut rng)
        .expect("dataset generation succeeds");
    let mut trainer_config = TrainerConfig::small();
    trainer_config.epochs = 1;
    let model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &samples,
        5,
        &trainer_config,
        &mut rng,
    );
    let fitness = LearnedFitness::new(model);

    let generator = Generator::new(GeneratorConfig::for_length(5));
    let target = generator
        .program(&mut rng)
        .expect("program generation succeeds");
    let spec = generator.spec_for(&target, 5, &mut rng);

    let mut ga_config = GaConfig::small(5);
    ga_config.population_size = POPULATION;
    ga_config.max_generations = 1;
    ga_config.neighborhood = NeighborhoodStrategy::Disabled;
    let engine = GeneticEngine::new(ga_config);

    let mut group = c.benchmark_group("ga_one_generation");
    group.sample_size(10);
    group.bench_function(format!("synthesize_pop{POPULATION}_gen1"), |bench| {
        bench.iter(|| {
            let mut budget = SearchBudget::new(1_000_000);
            let mut run_rng = ChaCha8Rng::seed_from_u64(77);
            black_box(engine.synthesize(&spec, &fitness, &mut budget, &mut run_rng))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
