//! Benchmarks of the durable cache tier's warm-from-disk boot
//! (`BENCH_warm_start.json` records these).
//!
//! The workload matches the long-standing headline record: a trained NN-CF
//! fitness model scores a 128-candidate population of random length-5
//! programs against a 5-example specification in one batched call. Three
//! paths are measured:
//!
//! * `cold_boot` — a fresh in-memory cache per call: every distinct trace
//!   value runs through the step encoder (the no-`NETSYN_CACHE_DIR`
//!   behavior, and the behavior after any corruption fallback);
//! * `durable_open` — just [`FitnessCache::durable`] over a directory
//!   holding this workload's persisted scores and encodings: the pure boot
//!   cost of decoding and verifying the record logs;
//! * `warm_boot` — open the durable cache from disk *and* score the
//!   population: the end-to-end restart path, where every trace value is
//!   served from the loaded shard and the step encoder never runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsyn_dsl::{Generator, GeneratorConfig, Program};
use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
use netsyn_fitness::trainer::{train_fitness_model, FitnessModelKind, TrainerConfig};
use netsyn_fitness::{FitnessCache, FitnessFunction, LearnedFitness, TraceEncodingCache};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const POPULATION: usize = 128;

fn bench_warm_start(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut dataset_config = DatasetConfig::for_length(5);
    dataset_config.num_target_programs = 4;
    dataset_config.examples_per_program = 2;
    let samples = generate_dataset(&dataset_config, BalanceMetric::CommonFunctions, &mut rng)
        .expect("dataset generation succeeds");
    let mut trainer_config = TrainerConfig::small();
    trainer_config.epochs = 1;
    let model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &samples,
        5,
        &trainer_config,
        &mut rng,
    );
    let fitness = LearnedFitness::new(model);

    let generator = Generator::new(GeneratorConfig::for_length(5));
    let target = generator
        .program(&mut rng)
        .expect("program generation succeeds");
    let spec = generator.spec_for(&target, 5, &mut rng);
    let population: Vec<Program> = (0..POPULATION)
        .map(|_| generator.random_program(&mut rng))
        .collect();

    // Persist this workload's scores and trace encodings once, so the
    // warm-boot benchmarks restart from a realistic directory.
    let dir = std::env::temp_dir().join(format!("netsyn_warm_start_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let cache = FitnessCache::durable(&dir).expect("open durable cache");
        let traces = cache.trace_shard(&fitness.cache_key());
        let memo = cache.shard(&fitness.cache_key(), &spec);
        let scores = fitness.score_batch_cached(&population, &spec, &traces);
        for (program, score) in population.iter().zip(&scores) {
            memo.insert(program.clone(), *score);
        }
        cache.flush().expect("flush");
    }

    let mut group = c.benchmark_group("warm_start");
    group.sample_size(10);

    // Cold boot: fresh in-memory shard, full step-encoder sweep.
    group.bench_function(format!("cold_boot_score_{POPULATION}"), |bench| {
        bench.iter(|| {
            black_box(fitness.score_batch_cached(
                black_box(&population),
                &spec,
                &TraceEncodingCache::new(),
            ))
        });
    });

    // Boot cost alone: decode + CRC-verify both record logs into memory.
    group.bench_function("durable_open", |bench| {
        bench.iter(|| black_box(FitnessCache::durable(&dir).expect("reopen")));
    });

    // Warm boot: open from disk and score — the restart path end to end.
    group.bench_function(format!("warm_boot_score_{POPULATION}"), |bench| {
        bench.iter(|| {
            let cache = FitnessCache::durable(&dir).expect("reopen");
            let traces = cache.trace_shard(&fitness.cache_key());
            let scores = fitness.score_batch_cached(black_box(&population), &spec, &traces);
            assert_eq!(
                traces.encode_count(),
                0,
                "a warm boot must serve every trace value from disk"
            );
            black_box(scores)
        });
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_warm_start);
criterion_main!(benches);
