//! Micro-benchmarks of the island-sharded GA driver and the portfolio race.
//!
//! `k1_oracle_synthesis_len3` is the K=1 parity check against the
//! pre-refactor `ga_engine/oracle_synthesis_len3` record (same workload,
//! same seeds): a single island drives the caller's RNG and budget directly,
//! so the refactor must cost nothing there. `k2`/`k4` measure the sharded
//! driver on this host (on a 1-vCPU container islands time-slice one core;
//! re-record with `NETSYN_POOL_THREADS=K` on a multi-core host to see the
//! wall-clock win). `portfolio_race_len3` runs the full three-strategy race
//! (GA islands, DFS neighborhood, guided beam) with first-solution
//! cancellation on the same problem.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsyn_core::prelude::{SynthesisProblem, Synthesizer};
use netsyn_core::{FitnessChoice, NetSyn, NetSynConfig, PortfolioSynthesizer};
use netsyn_dsl::{Generator, GeneratorConfig, IoSpec};
use netsyn_fitness::{ClosenessMetric, OracleFitness};
use netsyn_ga::{GaConfig, GeneticEngine, SearchBudget};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sample_spec(length: usize, seed: u64) -> (netsyn_dsl::Program, IoSpec) {
    let generator = Generator::new(GeneratorConfig::for_length(length));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let target = generator.program(&mut rng).unwrap();
    let spec = generator.spec_for(&target, 5, &mut rng);
    (target, spec)
}

fn bench_islands(c: &mut Criterion) {
    let mut group = c.benchmark_group("island_portfolio");
    group.sample_size(10);

    // Same workload and seeds as ga_engine/oracle_synthesis_len3: the K=1
    // parity point of the island refactor.
    for islands in [1usize, 2, 4] {
        group.bench_function(format!("k{islands}_oracle_synthesis_len3"), |b| {
            let (target, spec) = sample_spec(3, 12);
            let mut config = GaConfig::small(3);
            config.islands = islands;
            let engine = GeneticEngine::new(config);
            let oracle = OracleFitness::new(target, ClosenessMetric::CommonFunctions);
            b.iter(|| {
                let mut budget = SearchBudget::new(200_000);
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                black_box(engine.synthesize(&spec, &oracle, &mut budget, &mut rng))
            });
        });
    }

    // The full heterogeneous race on the same problem: GA islands, a DFS
    // neighborhood walk and a guided beam under one shared budget.
    group.bench_function("portfolio_race_len3", |b| {
        let (target, spec) = sample_spec(3, 12);
        let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, 3);
        let netsyn = NetSyn::new(config, None).with_oracle_target(target);
        let portfolio = PortfolioSynthesizer::new(netsyn);
        let problem = SynthesisProblem::new(spec, 3);
        b.iter(|| {
            let mut budget = SearchBudget::new(200_000);
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            black_box(portfolio.synthesize(&problem, &mut budget, &mut rng))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_islands);
criterion_main!(benches);
