//! Property-based tests for the DSL: validity-by-construction, interpreter
//! totality, dead-code elimination soundness and parser round-trips.

use netsyn_dsl::dce::{effective_length, eliminate_dead_code, has_dead_code};
use netsyn_dsl::{Function, IoSpec, Program, Type, Value};
use proptest::prelude::*;

fn arb_function() -> impl Strategy<Value = Function> {
    (0..Function::COUNT).prop_map(|i| Function::ALL[i])
}

fn arb_program(max_len: usize) -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_function(), 1..=max_len).prop_map(Program::new)
}

fn arb_list() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-100_i64..=100, 0..=12)
}

fn arb_inputs() -> impl Strategy<Value = Vec<Value>> {
    arb_list().prop_map(|xs| vec![Value::List(xs)])
}

proptest! {
    /// Every function sequence is a valid program that executes without
    /// panicking and produces one trace entry per statement.
    #[test]
    fn interpreter_is_total(program in arb_program(10), inputs in arb_inputs()) {
        let exec = program.run(&inputs).expect("non-empty programs always run");
        prop_assert_eq!(exec.steps.len(), program.len());
        prop_assert_eq!(exec.steps.last().cloned().unwrap(), exec.output);
    }

    /// The interpreter is deterministic.
    #[test]
    fn interpreter_is_deterministic(program in arb_program(8), inputs in arb_inputs()) {
        let a = program.run(&inputs).unwrap();
        let b = program.run(&inputs).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Each step's value type equals the statement's declared output type.
    #[test]
    fn trace_types_match_signatures(program in arb_program(8), inputs in arb_inputs()) {
        let exec = program.run(&inputs).unwrap();
        for (func, step) in program.functions().iter().zip(exec.steps.iter()) {
            prop_assert_eq!(step.ty(), func.output_type());
        }
    }

    /// Dead-code elimination never changes the program's output and never
    /// removes the final statement.
    #[test]
    fn dce_preserves_semantics(program in arb_program(10), inputs in arb_inputs()) {
        let optimized = eliminate_dead_code(&program, &[Type::List]);
        prop_assert!(!optimized.is_empty());
        prop_assert_eq!(optimized.functions().last(), program.functions().last());
        prop_assert_eq!(
            program.output(&inputs).unwrap(),
            optimized.output(&inputs).unwrap()
        );
    }

    /// After dead-code elimination there is no dead code left, and the
    /// effective length equals the optimized program's length.
    #[test]
    fn dce_is_idempotent(program in arb_program(10)) {
        let optimized = eliminate_dead_code(&program, &[Type::List]);
        prop_assert!(!has_dead_code(&optimized, &[Type::List]));
        prop_assert_eq!(optimized.len(), effective_length(&program, &[Type::List]));
        let twice = eliminate_dead_code(&optimized, &[Type::List]);
        prop_assert_eq!(twice, optimized);
    }

    /// Program text round-trips through Display and FromStr.
    #[test]
    fn program_text_round_trips(program in arb_program(10)) {
        let text = program.to_string();
        let parsed: Program = text.parse().unwrap();
        prop_assert_eq!(parsed, program);
    }

    /// Function ids round-trip and stay in range.
    #[test]
    fn function_ids_round_trip(program in arb_program(10)) {
        let ids = program.ids();
        prop_assert!(ids.iter().all(|&id| (1..=41).contains(&id)));
        prop_assert_eq!(Program::from_ids(&ids).unwrap(), program);
    }

    /// A specification generated from a program is always satisfied by that
    /// program (self-consistency of the equivalence check).
    #[test]
    fn spec_from_program_is_satisfied(program in arb_program(8), lists in prop::collection::vec(arb_list(), 1..5)) {
        let inputs: Vec<Vec<Value>> = lists.into_iter().map(|l| vec![Value::List(l)]).collect();
        let spec = IoSpec::from_program(&program, &inputs);
        prop_assert!(spec.is_satisfied_by(&program));
        prop_assert_eq!(spec.satisfied_count(&program), spec.len());
    }

    /// Replacing a statement keeps the program valid and the same length
    /// (the neighborhood-search building block).
    #[test]
    fn single_replacement_stays_valid(
        program in arb_program(8),
        idx in 0usize..8,
        func in arb_function(),
        inputs in arb_inputs()
    ) {
        let idx = idx % program.len();
        let mutated = program.with_replaced(idx, func);
        prop_assert_eq!(mutated.len(), program.len());
        prop_assert!(mutated.run(&inputs).is_ok());
    }

    /// List outputs only ever contain values derived from saturating i64
    /// arithmetic — no panics for extreme inputs.
    #[test]
    fn extreme_inputs_do_not_panic(program in arb_program(10)) {
        let inputs = vec![Value::List(vec![i64::MAX, i64::MIN, 0, 1, -1])];
        let _ = program.run(&inputs).unwrap();
    }
}
