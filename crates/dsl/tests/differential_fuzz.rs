//! Differential fuzzing: for every registered domain, the interpreter and
//! the DCE'd program must agree on random inputs. Any new domain registered
//! in [`netsyn_dsl::all_domains`] inherits these semantics tests for free —
//! the strategies below derive everything (vocabulary, input types) from the
//! domain itself.

use netsyn_dsl::dce::{eliminate_dead_code, has_dead_code};
use netsyn_dsl::{DomainId, Function, Program, Type, Value};
use proptest::prelude::*;

fn arb_domain() -> impl Strategy<Value = DomainId> {
    (0..DomainId::ALL.len()).prop_map(|i| DomainId::ALL[i])
}

/// A random program drawn from the domain's own vocabulary. The domain is
/// sampled first and threaded through, so shrinking stays within one domain.
fn arb_domain_program(max_len: usize) -> impl Strategy<Value = (DomainId, Program)> {
    arb_domain().prop_flat_map(move |domain| {
        let vocab = domain.vocab();
        prop::collection::vec(0..vocab.len(), 1..=max_len).prop_map(move |picks| {
            (
                domain,
                Program::new(picks.iter().map(|&i| vocab[i]).collect()),
            )
        })
    })
}

fn arb_word() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 0..=6)
        .prop_map(|v| v.iter().map(|&b| char::from(b'a' + b)).collect())
}

fn arb_value_of(ty: Type) -> BoxedStrategy<Value> {
    match ty {
        Type::Int => (-100_i64..=100).prop_map(Value::Int).boxed(),
        Type::List => prop::collection::vec(-100_i64..=100, 0..=12)
            .prop_map(Value::List)
            .boxed(),
        Type::Str => prop::collection::vec(arb_word(), 0..=8)
            .prop_map(|ws| Value::Str(ws.join(" ")))
            .boxed(),
        Type::StrList => prop::collection::vec(arb_word(), 0..=8)
            .prop_map(Value::StrList)
            .boxed(),
    }
}

/// Inputs matching the domain's default input types.
fn arb_domain_inputs(domain: DomainId) -> impl Strategy<Value = Vec<Value>> {
    let strategies: Vec<BoxedStrategy<Value>> = domain
        .default_input_types()
        .iter()
        .map(|&ty| arb_value_of(ty))
        .collect();
    strategies
}

/// A domain, a program from its vocabulary, and matching inputs.
fn arb_fuzz_case(max_len: usize) -> impl Strategy<Value = (DomainId, Program, Vec<Value>)> {
    arb_domain_program(max_len).prop_flat_map(|(domain, program)| {
        arb_domain_inputs(domain).prop_map(move |inputs| (domain, program.clone(), inputs))
    })
}

proptest! {
    /// The interpreter is total over every domain's full program space.
    #[test]
    fn interpreter_is_total_in_every_domain((domain, program, inputs) in arb_fuzz_case(10)) {
        let exec = program.run(&inputs).expect("non-empty programs always run");
        prop_assert_eq!(exec.steps.len(), program.len());
        // Every sampled operator really belongs to the domain's vocabulary.
        prop_assert!(program.functions().iter().all(|f| domain.vocab().contains(f)));
    }

    /// Differential check: eliminating dead code never changes the output,
    /// in any domain.
    #[test]
    fn dce_agrees_with_interpreter((domain, program, inputs) in arb_fuzz_case(10)) {
        let input_types = domain.default_input_types();
        let optimized = eliminate_dead_code(&program, input_types);
        prop_assert!(!optimized.is_empty());
        prop_assert!(!has_dead_code(&optimized, input_types));
        prop_assert_eq!(
            program.output(&inputs).unwrap(),
            optimized.output(&inputs).unwrap()
        );
    }

    /// The full execution traces of live statements agree too: DCE only
    /// removes statements, it never changes the value any surviving
    /// statement computes (checked via the final outputs across several
    /// input draws bundled as one spec-style comparison).
    #[test]
    fn dce_is_stable_under_repeated_elimination((domain, program, _inputs) in arb_fuzz_case(8)) {
        let input_types = domain.default_input_types();
        let once = eliminate_dead_code(&program, input_types);
        let twice = eliminate_dead_code(&once, input_types);
        prop_assert_eq!(once, twice);
    }

    /// Cross-domain robustness: a program from one domain fed inputs shaped
    /// for another never panics — wrong-typed arguments coerce to defaults.
    #[test]
    fn interpreter_is_total_on_mismatched_inputs(
        (_, program, _) in arb_fuzz_case(6),
        ty in (0..4usize).prop_map(|i| [Type::Int, Type::List, Type::Str, Type::StrList][i])
    ) {
        let inputs = vec![ty.default_value()];
        prop_assert!(program.run(&inputs).is_ok());
    }

    /// Text round-trip holds across every domain's vocabulary (string-op
    /// names parse back, including the dotted and separator-tagged ones).
    #[test]
    fn program_text_round_trips_in_every_domain((_, program, _) in arb_fuzz_case(10)) {
        let text = program.to_string();
        let parsed: Program = text.parse().unwrap();
        prop_assert_eq!(parsed, program);
    }
}

/// Non-proptest smoke: every registered domain's vocabulary is non-empty,
/// covered by `Function::EXTENDED`, and disjoint from its siblings.
#[test]
fn registered_vocabularies_partition_the_extended_table() {
    let mut seen = std::collections::HashSet::new();
    for domain in netsyn_dsl::all_domains() {
        assert!(!domain.vocab().is_empty());
        for f in domain.vocab() {
            assert!(Function::EXTENDED.contains(f));
            assert!(seen.insert(*f), "{f} is registered in two domains");
        }
    }
    assert_eq!(seen.len(), Function::EXTENDED.len());
}
