//! Tests for the stratified corpus generator: strata membership,
//! determinism under a fixed seed, and DCE survival of every emitted
//! program — for both registered domains.

use netsyn_dsl::dce::{eliminate_dead_code, has_dead_code};
use netsyn_dsl::{CorpusConfig, CorpusStratum, DomainId, ProgramKind, StratifiedCorpus};

fn corpus(domain: DomainId, seed: u64) -> StratifiedCorpus {
    let mut config = CorpusConfig::small(domain);
    config.seed = seed;
    StratifiedCorpus::generate(config).expect("small corpus generates for every domain")
}

#[test]
fn tasks_land_in_their_requested_strata() {
    for domain in DomainId::ALL {
        let corpus = corpus(domain, 7);
        let config = corpus.config().clone();
        assert_eq!(
            corpus.tasks().len(),
            config.strata().len() * config.tasks_per_stratum
        );
        for entry in corpus.tasks() {
            // The fig5 bins: generated length and output kind both match the
            // stratum the task was generated for.
            assert_eq!(entry.task.target_length(), entry.stratum.length);
            assert_eq!(entry.task.kind(), Some(entry.stratum.kind));
            assert_eq!(entry.task.spec.len(), config.examples_per_task);
        }
        // Every stratum is populated to its quota.
        for stratum in config.strata() {
            assert_eq!(
                corpus.stratum_tasks(stratum).len(),
                config.tasks_per_stratum,
                "stratum {stratum:?} under-filled"
            );
        }
    }
}

#[test]
fn generation_is_deterministic_under_a_fixed_seed() {
    for domain in DomainId::ALL {
        let a = corpus(domain, 11);
        let b = corpus(domain, 11);
        let c = corpus(domain, 12);
        assert_eq!(a, b, "same seed must reproduce the same corpus");
        assert_ne!(
            a.tasks(),
            c.tasks(),
            "different seeds should virtually always differ"
        );
    }
}

#[test]
fn strata_are_seed_stable_under_reordering_and_subsetting() {
    // Dropping a stratum from the config must not perturb the tasks of the
    // remaining ones — each stratum derives its own RNG stream.
    let full = corpus(DomainId::List, 7);
    let mut subset_config = CorpusConfig::small(DomainId::List);
    subset_config.lengths = vec![3, 1]; // reordered and subsetted
    let subset = StratifiedCorpus::generate(subset_config).unwrap();
    for stratum in subset.config().strata() {
        let from_full: Vec<_> = full.stratum_tasks(stratum);
        let from_subset: Vec<_> = subset.stratum_tasks(stratum);
        assert_eq!(from_full, from_subset, "stratum {stratum:?} drifted");
    }
}

#[test]
fn every_emitted_program_survives_dce_non_empty() {
    for domain in DomainId::ALL {
        let corpus = corpus(domain, 7);
        let input_types = domain.default_input_types();
        for entry in corpus.tasks() {
            let target = &entry.task.target;
            assert!(
                !has_dead_code(target, input_types),
                "corpus target {target} has dead code"
            );
            let optimized = eliminate_dead_code(target, input_types);
            assert!(!optimized.is_empty());
            assert_eq!(&optimized, target, "corpus targets are already DCE-clean");
        }
    }
}

#[test]
fn function_histogram_counts_every_target_token() {
    for domain in DomainId::ALL {
        let corpus = corpus(domain, 7);
        let histogram = corpus.function_histogram();
        assert_eq!(histogram.len(), domain.vocab_len());
        let total: usize = histogram.iter().sum();
        let expected: usize = corpus.tasks().iter().map(|t| t.task.target_length()).sum();
        assert_eq!(total, expected, "histogram must count every statement");
        assert!(total > 0);
    }
}

#[test]
fn both_kinds_are_reachable_in_both_domains() {
    // Sanity for the string domain specifically: its vocabulary has scalar
    // producers (STR.LEN, WORDS.COUNT, JOIN, ...) and sequence producers
    // (SPLIT, WORDS.SORT, ...), so both fig5 bins must fill.
    for domain in DomainId::ALL {
        let corpus = corpus(domain, 7);
        for kind in [ProgramKind::Singleton, ProgramKind::List] {
            let stratum = CorpusStratum { kind, length: 2 };
            assert!(
                !corpus.stratum_tasks(stratum).is_empty(),
                "{domain:?} produced no {kind} programs"
            );
        }
    }
}
