//! Pins the operator token tables: id ↔ `from_str` ↔ `Display` round-trips
//! against the registered vocabularies, plus the literal (id, name) table.
//!
//! Token ids feed the learned encoder's embedding rows and the persisted
//! cache headers — silently renumbering or renaming an operator invalidates
//! every trained checkpoint. If one of these tests fails, you almost
//! certainly reordered a vocabulary; the fix is to restore the order, not to
//! update the table.

use netsyn_dsl::{all_domains, DomainId, Function};
use proptest::prelude::*;

/// The frozen global token table: (stable id, display name) for every
/// operator in `Function::EXTENDED` order. Append new rows only.
const PINNED_TABLE: &[(u8, &str)] = &[
    (1, "ACCESS"),
    (2, "COUNT(>0)"),
    (3, "COUNT(<0)"),
    (4, "COUNT(odd)"),
    (5, "COUNT(even)"),
    (6, "HEAD"),
    (7, "LAST"),
    (8, "MINIMUM"),
    (9, "MAXIMUM"),
    (10, "SEARCH"),
    (11, "SUM"),
    (12, "DELETE"),
    (13, "DROP"),
    (14, "FILTER(>0)"),
    (15, "FILTER(<0)"),
    (16, "FILTER(odd)"),
    (17, "FILTER(even)"),
    (18, "INSERT"),
    (19, "MAP(+1)"),
    (20, "MAP(-1)"),
    (21, "MAP(*2)"),
    (22, "MAP(*3)"),
    (23, "MAP(*4)"),
    (24, "MAP(/2)"),
    (25, "MAP(/3)"),
    (26, "MAP(/4)"),
    (27, "MAP(*(-1))"),
    (28, "MAP(^2)"),
    (29, "REVERSE"),
    (30, "SCANL1(+)"),
    (31, "SCANL1(-)"),
    (32, "SCANL1(*)"),
    (33, "SCANL1(min)"),
    (34, "SCANL1(max)"),
    (35, "SORT"),
    (36, "TAKE"),
    (37, "ZIPWITH(+)"),
    (38, "ZIPWITH(-)"),
    (39, "ZIPWITH(*)"),
    (40, "ZIPWITH(min)"),
    (41, "ZIPWITH(max)"),
    (42, "CONCAT"),
    (43, "UPPER"),
    (44, "LOWER"),
    (45, "TITLE"),
    (46, "TRIM"),
    (47, "STR.REVERSE"),
    (48, "STR.TAKE"),
    (49, "STR.DROP"),
    (50, "STR.LEN"),
    (51, "SPLIT(ws)"),
    (52, "SPLIT(sep)"),
    (53, "JOIN(ws)"),
    (54, "JOIN(sep)"),
    (55, "WORDS.REVERSE"),
    (56, "WORDS.SORT"),
    (57, "WORDS.HEAD"),
    (58, "WORDS.LAST"),
    (59, "WORDS.COUNT"),
];

#[test]
fn the_global_token_table_is_frozen() {
    assert_eq!(PINNED_TABLE.len(), Function::EXTENDED.len());
    for ((id, name), f) in PINNED_TABLE.iter().zip(Function::EXTENDED.iter()) {
        assert_eq!(f.id(), *id, "{f} was renumbered");
        assert_eq!(f.to_string(), *name, "operator id {id} was renamed");
    }
}

#[test]
fn list_domain_vocabulary_matches_the_paper_numbering() {
    let vocab = DomainId::List.vocab();
    assert_eq!(vocab.len(), 41);
    for (i, f) in vocab.iter().enumerate() {
        assert_eq!(f.id() as usize, i + 1);
        assert_eq!(DomainId::List.token_index(*f), Some(i));
    }
}

#[test]
fn string_domain_vocabulary_continues_at_42() {
    let vocab = DomainId::Str.vocab();
    assert_eq!(vocab.len(), 18);
    for (i, f) in vocab.iter().enumerate() {
        assert_eq!(f.id() as usize, 42 + i);
        assert_eq!(DomainId::Str.token_index(*f), Some(i));
    }
}

#[test]
fn vocab_fingerprints_are_frozen() {
    // These constants key persisted caches: a changed fingerprint quarantines
    // every existing cache file for the domain. They change iff the token
    // table above changes, which is forbidden (append-only).
    assert_eq!(DomainId::List.vocab_fingerprint(), 0x90da_5b2b_8689_86e8);
    assert_eq!(DomainId::Str.vocab_fingerprint(), 0xbcaa_478d_e6b8_97e6);
}

proptest! {
    /// id → Function → Display → from_str → id round-trips for the whole
    /// global table.
    #[test]
    fn id_name_round_trips(pick in 0..Function::EXTENDED.len()) {
        let f = Function::EXTENDED[pick];
        prop_assert_eq!(Function::from_id(f.id()).unwrap(), f);
        prop_assert_eq!(f.to_string().parse::<Function>().unwrap(), f);
        prop_assert_eq!(f.index(), pick);
    }

    /// Parsing is insensitive to case and surrounding whitespace for every
    /// registered operator name.
    #[test]
    fn parsing_is_case_and_whitespace_insensitive(pick in 0..Function::EXTENDED.len()) {
        let f = Function::EXTENDED[pick];
        let noisy = format!("  {}  ", f.to_string().to_lowercase());
        prop_assert_eq!(noisy.parse::<Function>().unwrap(), f);
    }

    /// Every registered domain's token indices are dense, in-range and
    /// consistent with the global table.
    #[test]
    fn token_indices_are_dense_per_domain(d in 0..DomainId::ALL.len()) {
        let domain = all_domains()[d];
        for (i, f) in domain.vocab().iter().enumerate() {
            prop_assert_eq!(domain.id().token_index(*f), Some(i));
            prop_assert!(i < domain.vocab_len());
        }
    }
}
