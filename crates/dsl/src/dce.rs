//! Dead-code analysis and elimination.
//!
//! A statement is *dead* when its output is never consumed by a later
//! statement (directly or transitively) and it is not the final statement.
//! Because argument resolution is purely type-driven (see
//! [`crate::interp::resolve_arg_sources`]), liveness can be computed
//! statically, and removing dead statements never changes the program's
//! output: nothing ever resolved to them.
//!
//! The paper uses DCE during candidate generation and crossover/mutation to
//! guarantee that the *effective* length of candidate programs equals the
//! target length.

use crate::interp::ArgSource;
use crate::program::Program;
use crate::value::Type;

/// Liveness of every statement of a program, for a given set of input types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    live: Vec<bool>,
}

impl Liveness {
    /// Whether the statement at `index` is live.
    #[must_use]
    pub fn is_live(&self, index: usize) -> bool {
        self.live.get(index).copied().unwrap_or(false)
    }

    /// Number of live statements.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Per-statement liveness flags in program order.
    #[must_use]
    pub fn flags(&self) -> &[bool] {
        &self.live
    }
}

/// Computes the liveness of every statement of `program`, assuming the
/// program receives inputs of the given types.
#[must_use]
pub fn analyze_liveness(program: &Program, input_types: &[Type]) -> Liveness {
    let n = program.len();
    let mut live = vec![false; n];
    if n == 0 {
        return Liveness { live };
    }
    let flow = program.data_flow(input_types);
    // The final statement produces the program output and is always live.
    live[n - 1] = true;
    // Statements are only ever consumed by *later* statements, so one
    // backward sweep reaches a fixed point.
    for i in (0..n).rev() {
        if !live[i] {
            continue;
        }
        for src in &flow[i] {
            if let ArgSource::Statement(j) = *src {
                live[j] = true;
            }
        }
    }
    Liveness { live }
}

/// Returns a copy of `program` with all dead statements removed.
///
/// The returned program is semantically equivalent to the input for the given
/// input types.
#[must_use]
pub fn eliminate_dead_code(program: &Program, input_types: &[Type]) -> Program {
    let liveness = analyze_liveness(program, input_types);
    program
        .functions()
        .iter()
        .enumerate()
        .filter(|(i, _)| liveness.is_live(*i))
        .map(|(_, &f)| f)
        .collect()
}

/// Number of live statements of `program` — the paper's "effective length".
#[must_use]
pub fn effective_length(program: &Program, input_types: &[Type]) -> usize {
    analyze_liveness(program, input_types).live_count()
}

/// Whether `program` contains any dead statement.
#[must_use]
pub fn has_dead_code(program: &Program, input_types: &[Type]) -> bool {
    effective_length(program, input_types) < program.len()
}

/// The default input signature used throughout the reproduction: a single
/// list-of-integers input, like the paper's Table 1 example.
pub const DEFAULT_INPUT_TYPES: &[Type] = &[Type::List];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{Function, IntPredicate, MapOp};
    use crate::value::Value;

    fn list_input() -> Vec<Value> {
        vec![Value::List(vec![5, -3, 8, 2, -1])]
    }

    #[test]
    fn straight_pipeline_has_no_dead_code() {
        let p = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
        ]);
        assert!(!has_dead_code(&p, DEFAULT_INPUT_TYPES));
        assert_eq!(effective_length(&p, DEFAULT_INPUT_TYPES), 3);
        assert_eq!(eliminate_dead_code(&p, DEFAULT_INPUT_TYPES), p);
    }

    #[test]
    fn unconsumed_int_producer_is_dead() {
        // SUM's integer output is never consumed: SORT and REVERSE only take
        // lists, and the final output is the REVERSE result.
        let p = Program::new(vec![Function::Sum, Function::Sort, Function::Reverse]);
        let liveness = analyze_liveness(&p, DEFAULT_INPUT_TYPES);
        assert!(!liveness.is_live(0));
        assert!(liveness.is_live(1));
        assert!(liveness.is_live(2));
        assert_eq!(effective_length(&p, DEFAULT_INPUT_TYPES), 2);
    }

    #[test]
    fn consumed_int_producer_is_live() {
        // COUNT feeds TAKE, so it is live.
        let p = Program::new(vec![Function::Count(IntPredicate::Even), Function::Take]);
        let liveness = analyze_liveness(&p, DEFAULT_INPUT_TYPES);
        assert!(liveness.flags().iter().all(|&l| l));
    }

    #[test]
    fn shadowed_list_producer_is_dead() {
        // The first MAP's output is immediately superseded: SORT consumes the
        // second MAP (most recent list), and nothing else consumes the first.
        let p = Program::new(vec![
            Function::Map(MapOp::AddOne),
            Function::Filter(IntPredicate::Positive),
            Function::Sort,
        ]);
        // FILTER consumes MAP's output (most recent list), SORT consumes
        // FILTER: everything is live here.
        assert_eq!(effective_length(&p, DEFAULT_INPUT_TYPES), 3);

        // But a list producer sandwiched between two others that is never the
        // "most recent" source for anyone is dead:
        let q = Program::new(vec![
            Function::Map(MapOp::AddOne), // consumed by stmt 1
            Function::Sum,                // int, never consumed
            Function::Map(MapOp::Mul2),   // consumed by stmt 3 — wait, stmt1 is SUM
            Function::Sort,
        ]);
        // stmt0 (list) feeds stmt1? SUM takes the most recent list = stmt0, so
        // stmt0 is live only if stmt1 is live; SUM's int output is unused so
        // stmt1 is dead, and stmt2 reads stmt0 instead.
        let liveness = analyze_liveness(&q, DEFAULT_INPUT_TYPES);
        assert!(liveness.is_live(0));
        assert!(!liveness.is_live(1));
        assert!(liveness.is_live(2));
        assert!(liveness.is_live(3));
    }

    #[test]
    fn elimination_preserves_semantics() {
        let programs = vec![
            Program::new(vec![Function::Sum, Function::Sort, Function::Reverse]),
            Program::new(vec![
                Function::Map(MapOp::AddOne),
                Function::Sum,
                Function::Map(MapOp::Mul2),
                Function::Sort,
            ]),
            Program::new(vec![
                Function::Head,
                Function::Filter(IntPredicate::Odd),
                Function::Take,
            ]),
        ];
        for p in programs {
            let q = eliminate_dead_code(&p, DEFAULT_INPUT_TYPES);
            assert!(q.len() <= p.len());
            assert_eq!(
                p.output(&list_input()).unwrap(),
                q.output(&list_input()).unwrap(),
                "DCE changed the output of {p}"
            );
        }
    }

    #[test]
    fn last_statement_is_always_live() {
        for f in Function::ALL {
            let p = Program::new(vec![f]);
            assert_eq!(effective_length(&p, DEFAULT_INPUT_TYPES), 1);
        }
    }

    #[test]
    fn empty_program_has_zero_effective_length() {
        let p = Program::default();
        assert_eq!(effective_length(&p, DEFAULT_INPUT_TYPES), 0);
        assert!(!has_dead_code(&p, DEFAULT_INPUT_TYPES));
        assert_eq!(eliminate_dead_code(&p, DEFAULT_INPUT_TYPES), p);
    }
}
