//! Input-output specifications.
//!
//! A specification is the set `S_t = {(I_j, O_j)}` of input-output examples
//! that describes the behaviour of the hidden target program. Program
//! equivalence (Definition 3.1 of the paper) is defined with respect to such
//! a specification.

use crate::program::Program;
use crate::value::{Type, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single input-output example.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IoExample {
    /// Program inputs (usually a single list of integers).
    pub inputs: Vec<Value>,
    /// Expected output.
    pub output: Value,
}

impl IoExample {
    /// Creates a new example.
    #[must_use]
    pub fn new(inputs: Vec<Value>, output: Value) -> Self {
        IoExample { inputs, output }
    }

    /// Whether `program` maps this example's inputs to its output.
    #[must_use]
    pub fn is_satisfied_by(&self, program: &Program) -> bool {
        program
            .output(&self.inputs)
            .map(|out| out == self.output)
            .unwrap_or(false)
    }
}

impl fmt::Display for IoExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, input) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{input}")?;
        }
        write!(f, ") -> {}", self.output)
    }
}

/// A set of input-output examples describing the target program.
///
/// Specifications implement `Hash` so they can key spec-scoped caches (see
/// the fitness crate's `FitnessCache`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct IoSpec {
    examples: Vec<IoExample>,
}

impl IoSpec {
    /// Creates a specification from a list of examples.
    #[must_use]
    pub fn new(examples: Vec<IoExample>) -> Self {
        IoSpec { examples }
    }

    /// Builds the specification `{(I_j, P(I_j))}` by running `program` on
    /// each input set. Inputs on which the program fails to run (empty
    /// program) are skipped.
    #[must_use]
    pub fn from_program(program: &Program, inputs: &[Vec<Value>]) -> Self {
        let examples = inputs
            .iter()
            .filter_map(|ins| {
                program
                    .output(ins)
                    .ok()
                    .map(|out| IoExample::new(ins.clone(), out))
            })
            .collect();
        IoSpec { examples }
    }

    /// The examples of the specification.
    #[must_use]
    pub fn examples(&self) -> &[IoExample] {
        &self.examples
    }

    /// Number of examples (`m` in the paper).
    #[must_use]
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the specification has no examples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Iterates over the examples.
    pub fn iter(&self) -> std::slice::Iter<'_, IoExample> {
        self.examples.iter()
    }

    /// Adds an example.
    pub fn push(&mut self, example: IoExample) {
        self.examples.push(example);
    }

    /// Whether `program` is equivalent to the target program under this
    /// specification, i.e. satisfies every example (Definition 3.1).
    #[must_use]
    pub fn is_satisfied_by(&self, program: &Program) -> bool {
        !self.is_empty() && self.examples.iter().all(|ex| ex.is_satisfied_by(program))
    }

    /// Number of examples `program` satisfies.
    #[must_use]
    pub fn satisfied_count(&self, program: &Program) -> usize {
        self.examples
            .iter()
            .filter(|ex| ex.is_satisfied_by(program))
            .count()
    }

    /// The types of the program inputs, taken from the first example.
    #[must_use]
    pub fn input_types(&self) -> Vec<Type> {
        self.examples
            .first()
            .map(|ex| ex.inputs.iter().map(Value::ty).collect())
            .unwrap_or_default()
    }

    /// The output type implied by the examples, if they agree.
    #[must_use]
    pub fn output_type(&self) -> Option<Type> {
        let first = self.examples.first()?.output.ty();
        if self.examples.iter().all(|ex| ex.output.ty() == first) {
            Some(first)
        } else {
            None
        }
    }
}

impl FromIterator<IoExample> for IoSpec {
    fn from_iter<T: IntoIterator<Item = IoExample>>(iter: T) -> Self {
        IoSpec::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a IoSpec {
    type Item = &'a IoExample;
    type IntoIter = std::slice::Iter<'a, IoExample>;

    fn into_iter(self) -> Self::IntoIter {
        self.examples.iter()
    }
}

impl fmt::Display for IoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ex) in self.examples.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{ex}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{Function, IntPredicate, MapOp};

    fn table1_program() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
        ])
    }

    fn sample_inputs() -> Vec<Vec<Value>> {
        vec![
            vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
            vec![Value::List(vec![1, 2, 3])],
            vec![Value::List(vec![-1, -2])],
        ]
    }

    #[test]
    fn from_program_builds_consistent_spec() {
        let p = table1_program();
        let spec = IoSpec::from_program(&p, &sample_inputs());
        assert_eq!(spec.len(), 3);
        assert!(spec.is_satisfied_by(&p));
        assert_eq!(spec.satisfied_count(&p), 3);
        assert_eq!(spec.output_type(), Some(Type::List));
        assert_eq!(spec.input_types(), vec![Type::List]);
    }

    #[test]
    fn non_equivalent_program_fails_spec() {
        let p = table1_program();
        let spec = IoSpec::from_program(&p, &sample_inputs());
        let wrong = Program::new(vec![Function::Sort]);
        assert!(!spec.is_satisfied_by(&wrong));
        assert!(spec.satisfied_count(&wrong) < spec.len());
    }

    #[test]
    fn semantically_equivalent_program_satisfies_spec() {
        // SORT then REVERSE equals REVERSE of SORT of the same list; a
        // different function sequence computing the same outputs satisfies
        // the spec (Definition 3.1 is extensional).
        let p = Program::new(vec![Function::Sort, Function::Reverse]);
        let q = Program::new(vec![
            Function::Map(MapOp::Negate),
            Function::Sort,
            Function::Map(MapOp::Negate),
        ]);
        let spec = IoSpec::from_program(&p, &sample_inputs());
        assert!(spec.is_satisfied_by(&q));
    }

    #[test]
    fn empty_spec_is_never_satisfied() {
        let spec = IoSpec::default();
        assert!(spec.is_empty());
        assert!(!spec.is_satisfied_by(&table1_program()));
        assert_eq!(spec.output_type(), None);
        assert!(spec.input_types().is_empty());
    }

    #[test]
    fn empty_candidate_never_satisfies() {
        let spec = IoSpec::from_program(&table1_program(), &sample_inputs());
        assert!(!spec.is_satisfied_by(&Program::default()));
    }

    #[test]
    fn mixed_output_types_are_reported_as_none() {
        let spec = IoSpec::new(vec![
            IoExample::new(vec![Value::List(vec![1])], Value::Int(1)),
            IoExample::new(vec![Value::List(vec![2])], Value::List(vec![2])),
        ]);
        assert_eq!(spec.output_type(), None);
    }

    #[test]
    fn display_shows_examples() {
        let spec = IoSpec::new(vec![IoExample::new(
            vec![Value::List(vec![1, 2])],
            Value::Int(3),
        )]);
        assert_eq!(spec.to_string(), "([1, 2]) -> 3");
    }

    #[test]
    fn collect_and_push() {
        let mut spec: IoSpec = sample_inputs()
            .into_iter()
            .map(|ins| IoExample::new(ins, Value::Int(0)))
            .collect();
        assert_eq!(spec.len(), 3);
        spec.push(IoExample::new(vec![Value::Int(1)], Value::Int(1)));
        assert_eq!(spec.len(), 4);
        assert_eq!(spec.iter().count(), 4);
        assert_eq!((&spec).into_iter().count(), 4);
    }

    #[test]
    fn serde_round_trip() {
        let spec = IoSpec::from_program(&table1_program(), &sample_inputs());
        let json = serde_json::to_string(&spec).unwrap();
        let back: IoSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
