//! The [`Domain`] abstraction: an operator vocabulary plus the conventions a
//! synthesis pipeline needs to target it.
//!
//! A domain is a *view* over the global operator table
//! ([`Function::EXTENDED`]): it selects the vocabulary available to the
//! generator / GA / learned encoder, fixes the default program input types,
//! and fingerprints its vocabulary so persisted caches can tell domains
//! apart. Interpreter dispatch is shared — every [`Function`] knows its own
//! semantics — so registering a domain never requires touching the
//! interpreter, DCE, or the trace machinery.
//!
//! # Id-stability rules
//!
//! Token ids feed the learned encoder's embedding tables and the persisted
//! cache headers, so they must never change meaning:
//!
//! 1. A domain's `vocab()` is **append-only**. Never reorder, renumber or
//!    remove an operator — a shuffled vocabulary silently invalidates every
//!    trained checkpoint (the property test in `crates/dsl/tests/` pins the
//!    current tables).
//! 2. Global ids ([`Function::id`]) are assigned once, by position in
//!    [`Function::EXTENDED`], and are likewise append-only.
//! 3. Per-domain *token indices* ([`DomainId::token_index`]) are positions in
//!    the domain's own vocabulary; the list domain's indices coincide with
//!    `Function::index()` so pre-domain checkpoints stay valid.
//!
//! # Adding a domain
//!
//! 1. Append the new operators to [`Function`] (variants, signature,
//!    semantics, `Display`/`FromStr`) and to [`Function::EXTENDED`], after
//!    every existing entry.
//! 2. Add any new value types to [`Type`]/[`crate::Value`] — append-only, and
//!    give them a `to_tokens` flattening so the similarity metrics apply.
//! 3. Add a [`DomainId`] variant and a `Domain` impl with a `vocab()` slice
//!    listing the new operators, then register it in [`all_domains`].
//! 4. Done: the generator, GA, learned encoder, corpus generator and the
//!    differential fuzzer pick the domain up through the registry.

use crate::function::Function;
use crate::value::Type;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An operator-vocabulary domain the synthesis pipeline can target.
///
/// Implementations are zero-sized statics; use [`DomainId::resolve`] or
/// [`all_domains`] to obtain one.
pub trait Domain: Send + Sync {
    /// The domain's stable identifier.
    fn id(&self) -> DomainId;

    /// The operator vocabulary, ordered by token index. Append-only (see the
    /// module docs).
    fn vocab(&self) -> &'static [Function];

    /// The default program input types for generated tasks.
    fn default_input_types(&self) -> &'static [Type];

    /// Number of operators in the vocabulary — the size of the learned
    /// encoder's function-token table for this domain.
    fn vocab_len(&self) -> usize {
        self.vocab().len()
    }

    /// A stable 64-bit fingerprint of the vocabulary (FNV-1a over every
    /// operator's id and display name, in token order). Any renumbering or
    /// renaming changes the fingerprint, which quarantines persisted caches
    /// built against the old table.
    fn vocab_fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for f in self.vocab() {
            mix(f.id());
            for b in f.to_string().bytes() {
                mix(b);
            }
            mix(0);
        }
        hash
    }
}

/// Identifier of a registered [`Domain`]. `Copy` and serde-serializable so it
/// can be carried by configs the same way `MutationMode` is.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum DomainId {
    /// The paper's 41-function list-manipulation DSL.
    #[default]
    List,
    /// The 18-operator string-transformation DSL.
    Str,
}

impl DomainId {
    /// All registered domain ids.
    pub const ALL: [DomainId; 2] = [DomainId::List, DomainId::Str];

    /// Resolves the id to its registered domain.
    #[must_use]
    pub fn resolve(self) -> &'static dyn Domain {
        match self {
            DomainId::List => &ListDomain,
            DomainId::Str => &StrDomain,
        }
    }

    /// The domain's vocabulary (convenience for `resolve().vocab()`).
    #[must_use]
    pub fn vocab(self) -> &'static [Function] {
        self.resolve().vocab()
    }

    /// Vocabulary size (convenience for `resolve().vocab_len()`).
    #[must_use]
    pub fn vocab_len(self) -> usize {
        self.vocab().len()
    }

    /// Vocabulary fingerprint (convenience for
    /// `resolve().vocab_fingerprint()`).
    #[must_use]
    pub fn vocab_fingerprint(self) -> u64 {
        self.resolve().vocab_fingerprint()
    }

    /// Default program input types (convenience for
    /// `resolve().default_input_types()`).
    #[must_use]
    pub fn default_input_types(self) -> &'static [Type] {
        self.resolve().default_input_types()
    }

    /// The stable string name used in persisted cache headers.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DomainId::List => "list",
            DomainId::Str => "str",
        }
    }

    /// The token index of `function` in this domain's vocabulary, or `None`
    /// when the function is not part of the domain. For the list domain this
    /// coincides with [`Function::index`], which keeps pre-domain learned
    /// checkpoints valid.
    #[must_use]
    pub fn token_index(self, function: Function) -> Option<usize> {
        let global = function.index();
        match self {
            // Both vocabularies are contiguous id ranges, so the token index
            // is an offset — no scan needed on the encoder's hot path.
            DomainId::List => (global < Function::COUNT).then_some(global),
            DomainId::Str => global.checked_sub(Function::COUNT),
        }
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for DomainId {
    type Err = crate::DslError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainId::ALL
            .into_iter()
            .find(|id| id.as_str() == s.trim())
            .ok_or_else(|| crate::DslError::UnknownFunctionName(format!("domain `{}`", s.trim())))
    }
}

/// Every registered domain, in [`DomainId::ALL`] order.
#[must_use]
pub fn all_domains() -> [&'static dyn Domain; 2] {
    [DomainId::List.resolve(), DomainId::Str.resolve()]
}

/// The paper's 41-function list-manipulation DSL as a registered domain.
///
/// Its vocabulary is exactly [`Function::ALL`] in paper order, so every
/// token index, RNG draw sequence and learned checkpoint from before the
/// domain refactor is bit-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct ListDomain;

impl Domain for ListDomain {
    fn id(&self) -> DomainId {
        DomainId::List
    }

    fn vocab(&self) -> &'static [Function] {
        &Function::ALL
    }

    fn default_input_types(&self) -> &'static [Type] {
        &[Type::List]
    }
}

/// The string-transformation DSL (concat/case/substr/split-join family) as a
/// registered domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrDomain;

impl Domain for StrDomain {
    fn id(&self) -> DomainId {
        DomainId::Str
    }

    fn vocab(&self) -> &'static [Function] {
        &Function::STRING_OPS
    }

    fn default_input_types(&self) -> &'static [Type] {
        &[Type::Str]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_ids() {
        let domains = all_domains();
        assert_eq!(domains.len(), DomainId::ALL.len());
        for (id, domain) in DomainId::ALL.into_iter().zip(domains) {
            assert_eq!(domain.id(), id);
            assert_eq!(id.resolve().id(), id);
        }
    }

    #[test]
    fn list_domain_vocab_is_the_paper_table() {
        let d = DomainId::List;
        assert_eq!(d.vocab(), &Function::ALL[..]);
        assert_eq!(d.vocab_len(), 41);
        assert_eq!(d.default_input_types(), &[Type::List]);
        // Token index coincides with Function::index for every operator.
        for (i, f) in Function::ALL.iter().enumerate() {
            assert_eq!(d.token_index(*f), Some(i));
            assert_eq!(d.token_index(*f), Some(f.index()));
        }
        assert_eq!(d.token_index(Function::StrConcat), None);
    }

    #[test]
    fn str_domain_vocab_is_contiguous_after_the_list() {
        let d = DomainId::Str;
        assert_eq!(d.vocab(), &Function::STRING_OPS[..]);
        assert_eq!(d.vocab_len(), 18);
        assert_eq!(d.default_input_types(), &[Type::Str]);
        for (i, f) in Function::STRING_OPS.iter().enumerate() {
            assert_eq!(d.token_index(*f), Some(i));
            assert_eq!(f.index(), Function::COUNT + i);
        }
        assert_eq!(d.token_index(Function::Sort), None);
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let list = DomainId::List.vocab_fingerprint();
        let str_fp = DomainId::Str.vocab_fingerprint();
        assert_ne!(list, str_fp);
        // Recomputing yields the same value (pure function of the table).
        assert_eq!(list, DomainId::List.vocab_fingerprint());
    }

    #[test]
    fn id_string_round_trip() {
        for id in DomainId::ALL {
            assert_eq!(id.as_str().parse::<DomainId>().unwrap(), id);
            assert_eq!(id.to_string(), id.as_str());
        }
        assert!("nope".parse::<DomainId>().is_err());
    }

    #[test]
    fn serde_round_trip() {
        for id in DomainId::ALL {
            let json = serde_json::to_string(&id).unwrap();
            let back: DomainId = serde_json::from_str(&json).unwrap();
            assert_eq!(back, id);
        }
    }

    #[test]
    fn default_domain_is_list() {
        assert_eq!(DomainId::default(), DomainId::List);
    }
}
