//! Interpreter for the NetSyn DSL, including execution traces.
//!
//! Argument resolution follows Appendix A: each argument of a statement is
//! bound to the output of the most recently executed prior statement of the
//! required type; if no such statement exists, the program's own inputs are
//! consulted; if that also fails, the type's default value (0 / empty list)
//! is used. When a statement needs two arguments of the same type (only
//! `ZIPWITH`), the two most recent distinct producers are used.

use crate::error::DslError;
use crate::function::Function;
use crate::program::Program;
use crate::value::{Type, Value};
use serde::{Deserialize, Serialize};

/// Where an argument's value comes from during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArgSource {
    /// The output of the statement at this 0-based index.
    Statement(usize),
    /// The program input at this 0-based index.
    Input(usize),
    /// The type's default value (no producer was available).
    Default(Type),
}

/// Resolves the argument sources for the statement at `stmt_index`.
///
/// `stmt_output_types` are the output types of the statements *before*
/// `stmt_index` (i.e. its length must be at least `stmt_index`); only the
/// first `stmt_index` entries are inspected. `input_types` are the types of
/// the program inputs in order.
///
/// Resolution is purely type-driven and therefore static: the interpreter and
/// the dead-code analysis share this single implementation.
#[must_use]
pub fn resolve_arg_sources(
    stmt_index: usize,
    function: Function,
    stmt_output_types: &[Type],
    input_types: &[Type],
) -> Vec<ArgSource> {
    let mut sources = Vec::with_capacity(function.arity());
    resolve_arg_sources_into(
        stmt_index,
        function,
        stmt_output_types,
        input_types,
        &mut sources,
    );
    sources
}

/// [`resolve_arg_sources`], writing into a caller-provided buffer so the
/// interpreter's hot loop (one resolution per statement per candidate trace)
/// performs no per-statement allocation. The buffer is cleared first.
pub fn resolve_arg_sources_into(
    stmt_index: usize,
    function: Function,
    stmt_output_types: &[Type],
    input_types: &[Type],
    sources: &mut Vec<ArgSource>,
) {
    sources.clear();
    let wanted = function.signature().inputs;
    // This resolver runs for every statement of every candidate the GA
    // evaluates, so the "already used" sets are fixed-size bitsets rather
    // than heap-allocated vectors with O(n) membership scans. 128 bits cover
    // any realistic program length / input count; the (never exercised)
    // overflow fallback keeps long synthetic programs correct.
    if stmt_index <= 128 && input_types.len() <= 128 {
        let mut used_statements: u128 = 0;
        let mut used_inputs: u128 = 0;
        for &ty in wanted {
            let from_stmt = (0..stmt_index)
                .rev()
                .find(|&j| stmt_output_types[j] == ty && used_statements & (1 << j) == 0);
            if let Some(j) = from_stmt {
                used_statements |= 1 << j;
                sources.push(ArgSource::Statement(j));
                continue;
            }
            let from_input = (0..input_types.len())
                .rev()
                .find(|&k| input_types[k] == ty && used_inputs & (1 << k) == 0);
            if let Some(k) = from_input {
                used_inputs |= 1 << k;
                sources.push(ArgSource::Input(k));
                continue;
            }
            sources.push(ArgSource::Default(ty));
        }
        return;
    }
    sources.extend(resolve_arg_sources_unbounded(
        stmt_index,
        wanted,
        stmt_output_types,
        input_types,
    ));
}

/// Fallback for programs with more than 128 statements or inputs.
fn resolve_arg_sources_unbounded(
    stmt_index: usize,
    wanted: &[Type],
    stmt_output_types: &[Type],
    input_types: &[Type],
) -> Vec<ArgSource> {
    let mut used_statements = vec![false; stmt_index];
    let mut used_inputs = vec![false; input_types.len()];
    let mut sources = Vec::with_capacity(wanted.len());
    for ty in wanted {
        let from_stmt = (0..stmt_index)
            .rev()
            .find(|&j| stmt_output_types[j] == *ty && !used_statements[j]);
        if let Some(j) = from_stmt {
            used_statements[j] = true;
            sources.push(ArgSource::Statement(j));
            continue;
        }
        let from_input = (0..input_types.len())
            .rev()
            .find(|&k| input_types[k] == *ty && !used_inputs[k]);
        if let Some(k) = from_input {
            used_inputs[k] = true;
            sources.push(ArgSource::Input(k));
            continue;
        }
        sources.push(ArgSource::Default(*ty));
    }
    sources
}

/// The result of running a program: the per-statement trace and final output.
///
/// `steps[i]` is the output of statement `i`; the final output is the output
/// of the last statement. This is exactly the execution trace the paper feeds
/// into its neural fitness functions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Execution {
    /// Output value of each statement, in execution order.
    pub steps: Vec<Value>,
    /// Output of the final statement.
    pub output: Value,
}

impl Execution {
    /// The trace paired with the function that produced each step.
    #[must_use]
    pub fn annotated<'a>(&'a self, program: &'a Program) -> Vec<(Function, &'a Value)> {
        program
            .functions()
            .iter()
            .copied()
            .zip(self.steps.iter())
            .collect()
    }
}

/// Reusable scratch buffers for repeated trace runs.
///
/// The GA scores whole populations per generation, and every candidate is
/// traced on every specification example; allocating fresh type/source
/// buffers per run shows up in the allocator. A `TraceArena` is created once
/// per batch (see the fitness crate's `encode_candidates`) and recycled
/// across all runs, so a traced statement costs no allocation beyond its
/// output value.
#[derive(Debug, Clone, Default)]
pub struct TraceArena {
    input_types: Vec<Type>,
    step_types: Vec<Type>,
    sources: Vec<ArgSource>,
}

impl TraceArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        TraceArena::default()
    }
}

/// Default values handed to statements whose argument has no producer; kept
/// as statics so argument resolution can work entirely with borrows.
static DEFAULT_INT: Value = Value::Int(0);
static DEFAULT_LIST: Value = Value::List(Vec::new());
static DEFAULT_STR: Value = Value::Str(String::new());
static DEFAULT_STRLIST: Value = Value::StrList(Vec::new());

fn arg_ref<'a>(src: ArgSource, steps: &'a [Value], inputs: &'a [Value]) -> &'a Value {
    match src {
        ArgSource::Statement(j) => &steps[j],
        ArgSource::Input(k) => &inputs[k],
        ArgSource::Default(Type::Int) => &DEFAULT_INT,
        ArgSource::Default(Type::List) => &DEFAULT_LIST,
        ArgSource::Default(Type::Str) => &DEFAULT_STR,
        ArgSource::Default(Type::StrList) => &DEFAULT_STRLIST,
    }
}

impl Program {
    /// Runs the program on `inputs`, returning the full execution trace.
    ///
    /// # Errors
    ///
    /// Returns [`DslError::EmptyProgram`] if the program has no statements.
    pub fn run(&self, inputs: &[Value]) -> Result<Execution, DslError> {
        self.run_with(inputs, &mut TraceArena::new())
    }

    /// Runs the program on `inputs` using `arena` for every intermediate
    /// buffer, returning the same [`Execution`] as [`Program::run`].
    ///
    /// Callers tracing many candidates (the fitness-encoding batch path)
    /// reuse one arena across all runs so per-statement bookkeeping performs
    /// no allocation; arguments are resolved as borrows of prior step
    /// outputs and program inputs rather than clones.
    ///
    /// # Errors
    ///
    /// Returns [`DslError::EmptyProgram`] if the program has no statements.
    pub fn run_with(
        &self,
        inputs: &[Value],
        arena: &mut TraceArena,
    ) -> Result<Execution, DslError> {
        if self.is_empty() {
            return Err(DslError::EmptyProgram);
        }
        arena.input_types.clear();
        arena.input_types.extend(inputs.iter().map(Value::ty));
        arena.step_types.clear();
        let mut steps: Vec<Value> = Vec::with_capacity(self.len());
        for (i, &func) in self.functions().iter().enumerate() {
            resolve_arg_sources_into(
                i,
                func,
                &arena.step_types,
                &arena.input_types,
                &mut arena.sources,
            );
            let out = match *arena.sources.as_slice() {
                [] => func.apply_refs(&[]),
                [a] => func.apply_refs(&[arg_ref(a, &steps, inputs)]),
                [a, b, ..] => {
                    func.apply_refs(&[arg_ref(a, &steps, inputs), arg_ref(b, &steps, inputs)])
                }
            };
            arena.step_types.push(out.ty());
            steps.push(out);
        }
        let output = steps.last().cloned().expect("program is non-empty");
        Ok(Execution { steps, output })
    }

    /// Runs the program and returns only its final output.
    ///
    /// # Errors
    ///
    /// Returns [`DslError::EmptyProgram`] if the program has no statements.
    pub fn output(&self, inputs: &[Value]) -> Result<Value, DslError> {
        self.run(inputs).map(|e| e.output)
    }

    /// The argument sources of every statement (type-level data-flow graph).
    #[must_use]
    pub fn data_flow(&self, input_types: &[Type]) -> Vec<Vec<ArgSource>> {
        let mut step_types: Vec<Type> = Vec::with_capacity(self.len());
        let mut flow = Vec::with_capacity(self.len());
        for (i, &func) in self.functions().iter().enumerate() {
            let sources = resolve_arg_sources(i, func, &step_types, input_types);
            step_types.push(func.output_type());
            flow.push(sources);
        }
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{BinOp, IntPredicate, MapOp};

    fn list(v: &[i64]) -> Value {
        Value::List(v.to_vec())
    }

    #[test]
    fn table1_example_runs_as_in_the_paper() {
        let program = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
        ]);
        let exec = program.run(&[list(&[-2, 10, 3, -4, 5, 2])]).unwrap();
        assert_eq!(exec.output, list(&[20, 10, 6, 4]));
        assert_eq!(
            exec.steps,
            vec![
                list(&[10, 3, 5, 2]),
                list(&[20, 6, 10, 4]),
                list(&[4, 6, 10, 20]),
                list(&[20, 10, 6, 4]),
            ]
        );
    }

    #[test]
    fn section4_trace_example_matches() {
        // { FILTER(>0), MAP(*2), REVERSE, DROP } on [-2, 10, 3, -4, 5, 2].
        // The paper's example uses DROP(2); in our DSL the integer argument of
        // DROP resolves to the most recent integer producer, which does not
        // exist here, so 0 is used and DROP keeps the list intact. We therefore
        // check the first three trace entries against the paper.
        let program = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Reverse,
            Function::Drop,
        ]);
        let exec = program.run(&[list(&[-2, 10, 3, -4, 5, 2])]).unwrap();
        assert_eq!(exec.steps[0], list(&[10, 3, 5, 2]));
        assert_eq!(exec.steps[1], list(&[20, 6, 10, 4]));
        assert_eq!(exec.steps[2], list(&[4, 10, 6, 20]));
        assert_eq!(exec.steps[3], list(&[4, 10, 6, 20]));
    }

    #[test]
    fn empty_program_is_an_error() {
        let p = Program::default();
        assert_eq!(p.run(&[list(&[1])]), Err(DslError::EmptyProgram));
        assert_eq!(p.output(&[list(&[1])]), Err(DslError::EmptyProgram));
    }

    #[test]
    fn missing_inputs_use_defaults() {
        let p = Program::new(vec![Function::Sum]);
        // No list input at all: SUM sees the empty list.
        assert_eq!(p.output(&[]).unwrap(), Value::Int(0));
        // An int input does not satisfy a list argument.
        assert_eq!(p.output(&[Value::Int(5)]).unwrap(), Value::Int(0));
    }

    #[test]
    fn int_argument_resolves_to_most_recent_int_producer() {
        // SUM produces an int which TAKE should consume as its count.
        let p = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Count(IntPredicate::Even),
            Function::Take,
        ]);
        // positives = [4, 3, 2, 7]; even count = 2; TAKE 2 of most recent
        // list producer (the FILTER output).
        let out = p.output(&[list(&[4, -1, 3, 2, 7])]).unwrap();
        assert_eq!(out, list(&[4, 3]));
    }

    #[test]
    fn int_input_is_used_when_no_int_statement_exists() {
        let p = Program::new(vec![Function::Take]);
        let out = p.output(&[Value::Int(2), list(&[9, 8, 7])]).unwrap();
        assert_eq!(out, list(&[9, 8]));
    }

    #[test]
    fn zipwith_uses_two_most_recent_distinct_lists() {
        let p = Program::new(vec![
            Function::Map(MapOp::AddOne),
            Function::Map(MapOp::Mul2),
            Function::ZipWith(BinOp::Sub),
        ]);
        // step0 = xs + 1 = [2, 3]; step1 = step0 * 2 = [4, 6];
        // zipwith(-) combines step1 (first arg) and step0 (second arg).
        let out = p.output(&[list(&[1, 2])]).unwrap();
        assert_eq!(out, list(&[2, 3]));
    }

    #[test]
    fn zipwith_with_single_producer_falls_back_to_program_input() {
        let p = Program::new(vec![
            Function::Map(MapOp::Mul2),
            Function::ZipWith(BinOp::Add),
        ]);
        // step0 = [2, 4, 6]; second list argument falls back to the program
        // input [1, 2, 3]; sum = [3, 6, 9].
        let out = p.output(&[list(&[1, 2, 3])]).unwrap();
        assert_eq!(out, list(&[3, 6, 9]));
    }

    #[test]
    fn resolve_arg_sources_reports_defaults() {
        let sources = resolve_arg_sources(0, Function::Take, &[], &[]);
        assert_eq!(
            sources,
            vec![
                ArgSource::Default(Type::Int),
                ArgSource::Default(Type::List)
            ]
        );
    }

    #[test]
    fn data_flow_matches_execution_semantics() {
        let p = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Count(IntPredicate::Even),
            Function::Take,
        ]);
        let flow = p.data_flow(&[Type::List]);
        assert_eq!(flow.len(), 3);
        assert_eq!(flow[0], vec![ArgSource::Input(0)]);
        assert_eq!(flow[1], vec![ArgSource::Statement(0)]);
        assert_eq!(
            flow[2],
            vec![ArgSource::Statement(1), ArgSource::Statement(0)]
        );
    }

    #[test]
    fn every_function_sequence_executes_without_panicking() {
        // Smoke test: all 41 functions in one program, arbitrary input.
        let p = Program::new(Function::ALL.to_vec());
        let exec = p.run(&[list(&[3, -7, 0, 12, 5])]).unwrap();
        assert_eq!(exec.steps.len(), 41);
    }

    #[test]
    fn trace_annotation_pairs_functions_and_steps() {
        let p = Program::new(vec![Function::Sort, Function::Sum]);
        let exec = p.run(&[list(&[2, 1])]).unwrap();
        let annotated = exec.annotated(&p);
        assert_eq!(annotated.len(), 2);
        assert_eq!(annotated[0].0, Function::Sort);
        assert_eq!(*annotated[1].1, Value::Int(3));
    }
}
