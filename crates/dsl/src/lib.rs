//! # netsyn-dsl
//!
//! The list-manipulation domain-specific language used by the NetSyn
//! reproduction ("Learning Fitness Functions for Machine Programming",
//! MLSys 2021).
//!
//! The DSL follows DeepCoder's: the only data types are integers and lists of
//! integers, and a program is a straight-line sequence of calls to one of 41
//! built-in functions. There are no named variables: each argument binds to
//! the output of the most recent prior statement of the matching type,
//! falling back to the program inputs and finally to a default value. Every
//! function sequence is a valid program, every program terminates, and
//! crossover/mutation of programs always yields valid programs — the
//! properties the genetic algorithm relies on.
//!
//! The crate provides:
//!
//! * [`Function`], [`Program`], [`Value`] — the language itself;
//! * [`Program::run`] / [`Execution`] — an interpreter that also records the
//!   per-statement execution trace used by the learned fitness functions;
//! * [`dce`] — dead-code analysis ("effective length") and elimination;
//! * [`IoSpec`] — input-output specifications and program equivalence;
//! * [`Generator`] — random generation of programs, inputs and synthesis
//!   tasks for training corpora and evaluation suites.
//!
//! ## Example
//!
//! ```
//! use netsyn_dsl::{Function, Generator, GeneratorConfig, IntPredicate, MapOp, Program, Value};
//!
//! // The length-4 program from Table 1 of the paper.
//! let program: Program = "FILTER(>0), MAP(*2), SORT, REVERSE".parse()?;
//! let execution = program.run(&[Value::List(vec![-2, 10, 3, -4, 5, 2])])?;
//! assert_eq!(execution.output, Value::List(vec![20, 10, 6, 4]));
//!
//! // Random synthesis tasks for evaluation.
//! let generator = Generator::new(GeneratorConfig::for_length(5));
//! let mut rng = rand::thread_rng();
//! let task = generator.task(5, &mut rng)?;
//! assert!(task.spec.is_satisfied_by(&task.target));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dce;
mod error;
mod function;
mod generator;
mod interp;
mod program;
mod spec;
mod value;

pub use error::DslError;
pub use function::{BinOp, Function, IntPredicate, MapOp, Signature};
pub use generator::{Generator, GeneratorConfig, SynthesisTask};
pub use interp::{resolve_arg_sources, resolve_arg_sources_into, ArgSource, Execution, TraceArena};
pub use program::{Program, ProgramKind};
pub use spec::{IoExample, IoSpec};
pub use value::{Type, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Function>();
        assert_send_sync::<Program>();
        assert_send_sync::<Value>();
        assert_send_sync::<IoSpec>();
        assert_send_sync::<Generator>();
        assert_send_sync::<SynthesisTask>();
    }
}
