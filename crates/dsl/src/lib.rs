//! # netsyn-dsl
//!
//! The domain-specific languages used by the NetSyn reproduction ("Learning
//! Fitness Functions for Machine Programming", MLSys 2021), organized around
//! a domain-generic core.
//!
//! ## The `Domain` contract
//!
//! A [`Domain`] is an operator vocabulary plus the conventions a synthesis
//! pipeline needs to target it: a stable token table ([`Domain::vocab`]),
//! default program input types, and a vocabulary fingerprint that keys
//! persisted caches. Two domains are registered:
//!
//! * [`DomainId::List`] — the paper's DeepCoder-style DSL: integers and
//!   integer lists, 41 built-in functions (Appendix A). Its vocabulary is
//!   exactly [`Function::ALL`] in paper order, so everything trained or
//!   persisted before the domain refactor remains bit-identical.
//! * [`DomainId::Str`] — a string-transformation DSL (concat / case /
//!   substring / split-join over strings and word lists), ids 42..=59.
//!
//! All domains share one program shape: a straight-line sequence of calls
//! with no named variables, where each argument binds to the output of the
//! most recent prior statement of the matching type, falling back to the
//! program inputs and finally to a default value. Every function sequence is
//! a valid program, every program terminates (semantics are total:
//! arithmetic saturates, string indexing clamps), and crossover/mutation of
//! programs always yields valid programs — the properties the genetic
//! algorithm relies on.
//!
//! **Id stability is a hard rule:** token ids feed the learned encoder and
//! persisted cache headers, so vocabularies and the global id table
//! ([`Function::EXTENDED`]) are append-only. See the [`domain`] module docs
//! for the full rules and the step-by-step recipe for adding a domain.
//!
//! The crate provides:
//!
//! * [`Function`], [`Program`], [`Value`] — the languages themselves;
//! * [`Domain`] / [`DomainId`] — the operator-vocabulary registry;
//! * [`Program::run`] / [`Execution`] — a shared interpreter that also
//!   records the per-statement execution trace used by the learned fitness
//!   functions;
//! * [`dce`] — dead-code analysis ("effective length") and elimination;
//! * [`IoSpec`] — input-output specifications and program equivalence;
//! * [`Generator`] — random generation of programs, inputs and synthesis
//!   tasks, parameterized by domain;
//! * [`StratifiedCorpus`] — deterministic training corpora stratified by the
//!   fig5/fig6 bench bins (program kind × length).
//!
//! ## Example
//!
//! ```
//! use netsyn_dsl::{DomainId, Function, Generator, GeneratorConfig, Program, Value};
//!
//! // The length-4 list-domain program from Table 1 of the paper.
//! let program: Program = "FILTER(>0), MAP(*2), SORT, REVERSE".parse()?;
//! let execution = program.run(&[Value::List(vec![-2, 10, 3, -4, 5, 2])])?;
//! assert_eq!(execution.output, Value::List(vec![20, 10, 6, 4]));
//!
//! // A string-domain program, same machinery.
//! let shout: Program = "TRIM; UPPER".parse()?;
//! let out = shout.output(&[Value::Str("  hello  ".into())])?;
//! assert_eq!(out, Value::Str("HELLO".into()));
//!
//! // Random synthesis tasks for evaluation, in either domain.
//! let generator = Generator::new(GeneratorConfig::for_domain(DomainId::Str, 3));
//! let mut rng = rand::thread_rng();
//! let task = generator.task(5, &mut rng)?;
//! assert!(task.spec.is_satisfied_by(&task.target));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod corpus;
pub mod dce;
pub mod domain;
mod error;
mod function;
mod generator;
mod interp;
mod program;
mod spec;
mod value;

pub use corpus::{CorpusConfig, CorpusStratum, CorpusTask, StratifiedCorpus};
pub use domain::{all_domains, Domain, DomainId, ListDomain, StrDomain};
pub use error::DslError;
pub use function::{BinOp, Function, IntPredicate, MapOp, Separator, Signature};
pub use generator::{Generator, GeneratorConfig, SynthesisTask};
pub use interp::{resolve_arg_sources, resolve_arg_sources_into, ArgSource, Execution, TraceArena};
pub use program::{Program, ProgramKind};
pub use spec::{IoExample, IoSpec};
pub use value::{Type, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Function>();
        assert_send_sync::<Program>();
        assert_send_sync::<Value>();
        assert_send_sync::<IoSpec>();
        assert_send_sync::<Generator>();
        assert_send_sync::<SynthesisTask>();
    }
}
