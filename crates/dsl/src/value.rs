//! Runtime values and types of the NetSyn DSLs.
//!
//! The paper's list DSL has exactly two data types: 64-bit signed integers
//! and lists of them; the string domain adds strings and word lists. Missing
//! inputs default to the type's empty value (`0`, `[]`, `""`), mirroring the
//! semantics described in Appendix A of the paper.
//!
//! The variant order of [`Type`] and [`Value`] is append-only: derived
//! `Hash`/`Ord`/serde behavior of the original `Int`/`List` variants must
//! stay bit-identical so list-domain caches and checkpoints keep working.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The value types of the DSLs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Type {
    /// A single 64-bit signed integer.
    Int,
    /// A list of 64-bit signed integers.
    List,
    /// A UTF-8 string (string domain).
    Str,
    /// A list of strings — "words" (string domain).
    StrList,
}

impl Type {
    /// Returns the default value used by the runtime when no value of this
    /// type is available (0, empty list, empty string, empty word list).
    #[must_use]
    pub fn default_value(self) -> Value {
        match self {
            Type::Int => Value::Int(0),
            Type::List => Value::List(Vec::new()),
            Type::Str => Value::Str(String::new()),
            Type::StrList => Value::StrList(Vec::new()),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::List => write!(f, "[int]"),
            Type::Str => write!(f, "str"),
            Type::StrList => write!(f, "[str]"),
        }
    }
}

/// A runtime value of one of the DSL [`Type`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A list-of-integers value.
    List(Vec<i64>),
    /// A string value (string domain).
    Str(String),
    /// A word-list value (string domain).
    StrList(Vec<String>),
}

impl Value {
    /// The type of this value.
    #[must_use]
    pub fn ty(&self) -> Type {
        match self {
            Value::Int(_) => Type::Int,
            Value::List(_) => Type::List,
            Value::Str(_) => Type::Str,
            Value::StrList(_) => Type::StrList,
        }
    }

    /// Returns the integer if this value is an [`Value::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns a slice view of the list if this value is a [`Value::List`].
    #[must_use]
    pub fn as_list(&self) -> Option<&[i64]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the string if this value is a [`Value::Str`]. (Named
    /// `as_str_val` rather than `as_str` to avoid shadowing the common
    /// `Option`/`String` method name in user code.)
    #[must_use]
    pub fn as_str_val(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Returns a slice view of the word list if this value is a
    /// [`Value::StrList`].
    #[must_use]
    pub fn as_str_list(&self) -> Option<&[String]> {
        match self {
            Value::StrList(v) => Some(v),
            _ => None,
        }
    }

    /// Extracts the integer, substituting the type's default (`0`) on a type
    /// mismatch. This mirrors the runtime's behaviour of falling back to a
    /// default value on a type mismatch.
    #[must_use]
    pub fn int_or_default(&self) -> i64 {
        self.as_int().unwrap_or(0)
    }

    /// Extracts the list, substituting the empty list on a type mismatch.
    #[must_use]
    pub fn list_or_default(&self) -> Vec<i64> {
        match self {
            Value::List(v) => v.clone(),
            _ => Vec::new(),
        }
    }

    /// Extracts the string, substituting the empty string on a type mismatch.
    #[must_use]
    pub fn str_or_default(&self) -> String {
        match self {
            Value::Str(v) => v.clone(),
            _ => String::new(),
        }
    }

    /// Extracts the word list, substituting the empty list on a type
    /// mismatch.
    #[must_use]
    pub fn str_list_or_default(&self) -> Vec<String> {
        match self {
            Value::StrList(v) => v.clone(),
            _ => Vec::new(),
        }
    }

    /// Returns `true` if this is the default value of its own type
    /// (`0` or an empty list/string).
    #[must_use]
    pub fn is_default(&self) -> bool {
        match self {
            Value::Int(v) => *v == 0,
            Value::List(v) => v.is_empty(),
            Value::Str(v) => v.is_empty(),
            Value::StrList(v) => v.is_empty(),
        }
    }

    /// Flattens the value into a token sequence suitable for feature
    /// encoding: an integer becomes a one-element slice, a list becomes its
    /// elements. String-domain values flatten to their UTF-8 bytes so the
    /// list-domain similarity metrics (common prefix, edit distance) apply
    /// unchanged; word lists separate items with a `-1` sentinel (no UTF-8
    /// byte is negative, so the sentinel can't collide with content).
    #[must_use]
    pub fn to_tokens(&self) -> Vec<i64> {
        match self {
            Value::Int(v) => vec![*v],
            Value::List(v) => v.clone(),
            Value::Str(v) => v.bytes().map(i64::from).collect(),
            Value::StrList(v) => {
                let mut tokens = Vec::new();
                for (i, word) in v.iter().enumerate() {
                    if i > 0 {
                        tokens.push(-1);
                    }
                    tokens.extend(word.bytes().map(i64::from));
                }
                tokens
            }
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<Vec<i64>> for Value {
    fn from(v: Vec<i64>) -> Self {
        Value::List(v)
    }
}

impl From<&[i64]> for Value {
    fn from(v: &[i64]) -> Self {
        Value::List(v.to_vec())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<Vec<String>> for Value {
    fn from(v: Vec<String>) -> Self {
        Value::StrList(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::List(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::Str(v) => write!(f, "{v:?}"),
            Value::StrList(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x:?}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_default_values() {
        assert_eq!(Type::Int.default_value(), Value::Int(0));
        assert_eq!(Type::List.default_value(), Value::List(vec![]));
    }

    #[test]
    fn value_type_queries() {
        let i = Value::Int(7);
        let l = Value::List(vec![1, 2, 3]);
        assert_eq!(i.ty(), Type::Int);
        assert_eq!(l.ty(), Type::List);
        assert_eq!(i.as_int(), Some(7));
        assert_eq!(l.as_int(), None);
        assert_eq!(i.as_list(), None);
        assert_eq!(l.as_list(), Some(&[1, 2, 3][..]));
    }

    #[test]
    fn defaults_on_mismatch() {
        assert_eq!(Value::List(vec![1]).int_or_default(), 0);
        assert_eq!(Value::Int(9).list_or_default(), Vec::<i64>::new());
        assert_eq!(Value::Int(3).int_or_default(), 3);
        assert_eq!(Value::List(vec![4, 5]).list_or_default(), vec![4, 5]);
    }

    #[test]
    fn is_default_detection() {
        assert!(Value::Int(0).is_default());
        assert!(Value::List(vec![]).is_default());
        assert!(!Value::Int(1).is_default());
        assert!(!Value::List(vec![0]).is_default());
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(5_i64), Value::Int(5));
        assert_eq!(Value::from(vec![1, 2]), Value::List(vec![1, 2]));
        assert_eq!(Value::from(&[3_i64, 4][..]), Value::List(vec![3, 4]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::List(vec![1, 2, 3]).to_string(), "[1, 2, 3]");
        assert_eq!(Value::List(vec![]).to_string(), "[]");
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::List.to_string(), "[int]");
    }

    #[test]
    fn tokens_flattening() {
        assert_eq!(Value::Int(9).to_tokens(), vec![9]);
        assert_eq!(Value::List(vec![1, 2]).to_tokens(), vec![1, 2]);
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::List(vec![1, -2, 3]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_values() {
        let s = Value::Str("hi".to_string());
        let ws = Value::StrList(vec!["a".to_string(), "b".to_string()]);
        assert_eq!(s.ty(), Type::Str);
        assert_eq!(ws.ty(), Type::StrList);
        assert_eq!(s.as_str_val(), Some("hi"));
        assert_eq!(ws.as_str_val(), None);
        assert_eq!(ws.as_str_list().map(<[String]>::len), Some(2));
        assert_eq!(s.str_or_default(), "hi");
        assert_eq!(ws.str_or_default(), "");
        assert_eq!(s.str_list_or_default(), Vec::<String>::new());
        assert!(Type::Str.default_value().is_default());
        assert!(Type::StrList.default_value().is_default());
        assert_eq!(Type::Str.to_string(), "str");
        assert_eq!(Type::StrList.to_string(), "[str]");
        assert_eq!(s.to_string(), "\"hi\"");
        assert_eq!(ws.to_string(), "[\"a\", \"b\"]");
        assert_eq!(Value::from("x"), Value::Str("x".to_string()));
    }

    #[test]
    fn string_tokens_flatten_to_bytes() {
        assert_eq!(Value::Str("ab".to_string()).to_tokens(), vec![97, 98]);
        assert_eq!(
            Value::StrList(vec!["ab".to_string(), "c".to_string()]).to_tokens(),
            vec![97, 98, -1, 99]
        );
        assert_eq!(Value::StrList(vec![]).to_tokens(), Vec::<i64>::new());
    }

    #[test]
    fn string_serde_round_trip() {
        for v in [
            Value::Str("héllo".to_string()),
            Value::StrList(vec!["a".to_string(), "".to_string()]),
        ] {
            let json = serde_json::to_string(&v).unwrap();
            let back: Value = serde_json::from_str(&json).unwrap();
            assert_eq!(v, back);
        }
    }
}
