//! Runtime values and types of the NetSyn DSL.
//!
//! The DSL has exactly two data types: 64-bit signed integers and lists of
//! 64-bit signed integers. Missing inputs default to `0` and the empty list
//! respectively, mirroring the semantics described in Appendix A of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two value types of the DSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Type {
    /// A single 64-bit signed integer.
    Int,
    /// A list of 64-bit signed integers.
    List,
}

impl Type {
    /// Returns the default value used by the runtime when no value of this
    /// type is available (0 for integers, the empty list for lists).
    #[must_use]
    pub fn default_value(self) -> Value {
        match self {
            Type::Int => Value::Int(0),
            Type::List => Value::List(Vec::new()),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::List => write!(f, "[int]"),
        }
    }
}

/// A runtime value: either an integer or a list of integers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A list-of-integers value.
    List(Vec<i64>),
}

impl Value {
    /// The type of this value.
    #[must_use]
    pub fn ty(&self) -> Type {
        match self {
            Value::Int(_) => Type::Int,
            Value::List(_) => Type::List,
        }
    }

    /// Returns the integer if this value is an [`Value::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::List(_) => None,
        }
    }

    /// Returns a slice view of the list if this value is a [`Value::List`].
    #[must_use]
    pub fn as_list(&self) -> Option<&[i64]> {
        match self {
            Value::Int(_) => None,
            Value::List(v) => Some(v),
        }
    }

    /// Extracts the integer, substituting the type's default (`0`) when the
    /// value is a list. This mirrors the runtime's behaviour of falling back
    /// to a default value on a type mismatch.
    #[must_use]
    pub fn int_or_default(&self) -> i64 {
        self.as_int().unwrap_or(0)
    }

    /// Extracts the list, substituting the empty list when the value is an
    /// integer.
    #[must_use]
    pub fn list_or_default(&self) -> Vec<i64> {
        match self {
            Value::Int(_) => Vec::new(),
            Value::List(v) => v.clone(),
        }
    }

    /// Returns `true` if this is the default value of its own type
    /// (`0` or the empty list).
    #[must_use]
    pub fn is_default(&self) -> bool {
        match self {
            Value::Int(v) => *v == 0,
            Value::List(v) => v.is_empty(),
        }
    }

    /// Flattens the value into a token sequence suitable for feature
    /// encoding: an integer becomes a one-element slice, a list becomes its
    /// elements.
    #[must_use]
    pub fn to_tokens(&self) -> Vec<i64> {
        match self {
            Value::Int(v) => vec![*v],
            Value::List(v) => v.clone(),
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<Vec<i64>> for Value {
    fn from(v: Vec<i64>) -> Self {
        Value::List(v)
    }
}

impl From<&[i64]> for Value {
    fn from(v: &[i64]) -> Self {
        Value::List(v.to_vec())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::List(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_default_values() {
        assert_eq!(Type::Int.default_value(), Value::Int(0));
        assert_eq!(Type::List.default_value(), Value::List(vec![]));
    }

    #[test]
    fn value_type_queries() {
        let i = Value::Int(7);
        let l = Value::List(vec![1, 2, 3]);
        assert_eq!(i.ty(), Type::Int);
        assert_eq!(l.ty(), Type::List);
        assert_eq!(i.as_int(), Some(7));
        assert_eq!(l.as_int(), None);
        assert_eq!(i.as_list(), None);
        assert_eq!(l.as_list(), Some(&[1, 2, 3][..]));
    }

    #[test]
    fn defaults_on_mismatch() {
        assert_eq!(Value::List(vec![1]).int_or_default(), 0);
        assert_eq!(Value::Int(9).list_or_default(), Vec::<i64>::new());
        assert_eq!(Value::Int(3).int_or_default(), 3);
        assert_eq!(Value::List(vec![4, 5]).list_or_default(), vec![4, 5]);
    }

    #[test]
    fn is_default_detection() {
        assert!(Value::Int(0).is_default());
        assert!(Value::List(vec![]).is_default());
        assert!(!Value::Int(1).is_default());
        assert!(!Value::List(vec![0]).is_default());
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(5_i64), Value::Int(5));
        assert_eq!(Value::from(vec![1, 2]), Value::List(vec![1, 2]));
        assert_eq!(Value::from(&[3_i64, 4][..]), Value::List(vec![3, 4]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::List(vec![1, 2, 3]).to_string(), "[1, 2, 3]");
        assert_eq!(Value::List(vec![]).to_string(), "[]");
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::List.to_string(), "[int]");
    }

    #[test]
    fn tokens_flattening() {
        assert_eq!(Value::Int(9).to_tokens(), vec![9]);
        assert_eq!(Value::List(vec![1, 2]).to_tokens(), vec![1, 2]);
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::List(vec![1, -2, 3]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
