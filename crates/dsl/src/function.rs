//! The operator vocabulary of the NetSyn DSLs.
//!
//! [`Function::ALL`] holds the 41 functions of the paper's list DSL
//! (Appendix A); [`Function::STRING_OPS`] holds the 18 operators of the
//! string-transformation domain added on top; [`Function::EXTENDED`] is the
//! concatenation and defines the global id space (`1..=41` list, `42..=59`
//! string — list ids are bit-identical to the pre-domain numbering, so
//! learned-fitness checkpoints stay valid).
//!
//! Every function takes one or two arguments and returns exactly one value.
//! All semantics are total: arithmetic saturates, string indexing is
//! char-based and clamped, so programs can never panic or overflow — the
//! property the paper relies on for its genetic operators.

use crate::error::DslError;
use crate::value::{Type, Value};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Predicates used by the `COUNT` and `FILTER` families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IntPredicate {
    /// `> 0`
    Positive,
    /// `< 0`
    Negative,
    /// odd values (`|x| % 2 == 1`)
    Odd,
    /// even values (`x % 2 == 0`)
    Even,
}

impl IntPredicate {
    /// All predicates in their paper order (`>0`, `<0`, `odd`, `even`).
    pub const ALL: [IntPredicate; 4] = [
        IntPredicate::Positive,
        IntPredicate::Negative,
        IntPredicate::Odd,
        IntPredicate::Even,
    ];

    /// Evaluates the predicate on `x`.
    #[must_use]
    pub fn eval(self, x: i64) -> bool {
        match self {
            IntPredicate::Positive => x > 0,
            IntPredicate::Negative => x < 0,
            IntPredicate::Odd => x.rem_euclid(2) == 1,
            IntPredicate::Even => x.rem_euclid(2) == 0,
        }
    }

    /// Human-readable lambda syntax used by [`Function`]'s `Display` impl.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            IntPredicate::Positive => ">0",
            IntPredicate::Negative => "<0",
            IntPredicate::Odd => "odd",
            IntPredicate::Even => "even",
        }
    }
}

/// Unary arithmetic lambdas used by the `MAP` family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MapOp {
    /// `x + 1`
    AddOne,
    /// `x - 1`
    SubOne,
    /// `x * 2`
    Mul2,
    /// `x * 3`
    Mul3,
    /// `x * 4`
    Mul4,
    /// `x / 2` (truncating)
    Div2,
    /// `x / 3` (truncating)
    Div3,
    /// `x / 4` (truncating)
    Div4,
    /// `-x`
    Negate,
    /// `x * x`
    Square,
}

impl MapOp {
    /// All map lambdas in their paper order (`+1,-1,*2,*3,*4,/2,/3,/4,*(-1),^2`).
    pub const ALL: [MapOp; 10] = [
        MapOp::AddOne,
        MapOp::SubOne,
        MapOp::Mul2,
        MapOp::Mul3,
        MapOp::Mul4,
        MapOp::Div2,
        MapOp::Div3,
        MapOp::Div4,
        MapOp::Negate,
        MapOp::Square,
    ];

    /// Applies the lambda to `x` with saturating arithmetic.
    #[must_use]
    pub fn eval(self, x: i64) -> i64 {
        match self {
            MapOp::AddOne => x.saturating_add(1),
            MapOp::SubOne => x.saturating_sub(1),
            MapOp::Mul2 => x.saturating_mul(2),
            MapOp::Mul3 => x.saturating_mul(3),
            MapOp::Mul4 => x.saturating_mul(4),
            MapOp::Div2 => x / 2,
            MapOp::Div3 => x / 3,
            MapOp::Div4 => x / 4,
            MapOp::Negate => x.saturating_neg(),
            MapOp::Square => x.saturating_mul(x),
        }
    }

    /// Human-readable lambda syntax used by [`Function`]'s `Display` impl.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            MapOp::AddOne => "+1",
            MapOp::SubOne => "-1",
            MapOp::Mul2 => "*2",
            MapOp::Mul3 => "*3",
            MapOp::Mul4 => "*4",
            MapOp::Div2 => "/2",
            MapOp::Div3 => "/3",
            MapOp::Div4 => "/4",
            MapOp::Negate => "*(-1)",
            MapOp::Square => "^2",
        }
    }
}

/// Binary lambdas shared by the `SCANL1` and `ZIPWITH` families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
}

impl BinOp {
    /// All binary lambdas in their paper order (`+`, `-`, `*`, `min`, `max`).
    pub const ALL: [BinOp; 5] = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max];

    /// Applies the lambda to `(a, b)` with saturating arithmetic.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.saturating_add(b),
            BinOp::Sub => a.saturating_sub(b),
            BinOp::Mul => a.saturating_mul(b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }

    /// Human-readable lambda syntax used by [`Function`]'s `Display` impl.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

/// Word separators used by the `SPLIT`/`JOIN` families of the string domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Separator {
    /// Whitespace (splitting collapses runs; joining inserts a single space).
    Space,
    /// A comma (splitting trims surrounding whitespace from each piece).
    Comma,
}

impl Separator {
    /// All separators in their id order.
    pub const ALL: [Separator; 2] = [Separator::Space, Separator::Comma];

    /// Short symbol used by [`Function`]'s `Display` impl. Deliberately
    /// avoids a literal `,`: [`crate::Program`]'s parser splits statements
    /// on commas.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            Separator::Space => "ws",
            Separator::Comma => "sep",
        }
    }
}

/// The type signature of a DSL function: argument types and return type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Argument types in positional order (1 or 2 entries). A static slice:
    /// signatures are queried per statement per candidate trace, so they
    /// must not allocate.
    pub inputs: &'static [Type],
    /// Return type.
    pub output: Type,
}

/// One operator of the NetSyn DSLs (list or string domain).
///
/// For the first 41 variants the numbering used by [`Function::id`] matches
/// the "(Function N)" labels of Appendix A, so Figure 6's x-axis can be
/// reproduced directly; the string-domain operators continue the id space at
/// 42. **Ids are stable forever** — new operators are appended to
/// [`Function::EXTENDED`], never inserted, because ids feed the learned
/// encoder's token tables and persisted cache headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Function {
    /// Function 1: `ACCESS n xs` — the `n`-th element of `xs`, or 0 when out of range.
    Access,
    /// Functions 2–5: `COUNT p xs` — number of elements satisfying predicate `p`.
    Count(IntPredicate),
    /// Function 6: `HEAD xs` — first element or 0.
    Head,
    /// Function 7: `LAST xs` — last element or 0.
    Last,
    /// Function 8: `MINIMUM xs` — smallest element or 0.
    Minimum,
    /// Function 9: `MAXIMUM xs` — largest element or 0.
    Maximum,
    /// Function 10: `SEARCH x xs` — first index of `x` in `xs`, or -1.
    Search,
    /// Function 11: `SUM xs` — sum of the elements (saturating), or 0.
    Sum,
    /// Function 12: `DELETE x xs` — `xs` with every occurrence of `x` removed.
    Delete,
    /// Function 13: `DROP n xs` — `xs` without its first `n` elements.
    Drop,
    /// Functions 14–17: `FILTER p xs` — elements of `xs` satisfying predicate `p`.
    Filter(IntPredicate),
    /// Function 18: `INSERT x xs` — `xs` with `x` appended at the end.
    Insert,
    /// Functions 19–28: `MAP f xs` — `f` applied to every element.
    Map(MapOp),
    /// Function 29: `REVERSE xs`.
    Reverse,
    /// Functions 30–34: `SCANL1 op xs` — prefix scan with `op`.
    Scanl1(BinOp),
    /// Function 35: `SORT xs` — ascending sort.
    Sort,
    /// Function 36: `TAKE n xs` — the first `min(n, len)` elements.
    Take,
    /// Functions 37–41: `ZIPWITH op xs ys` — element-wise combination.
    ZipWith(BinOp),
    /// Function 42: `CONCAT a b` — string concatenation.
    StrConcat,
    /// Function 43: `UPPER s` — uppercase every character.
    StrUpper,
    /// Function 44: `LOWER s` — lowercase every character.
    StrLower,
    /// Function 45: `TITLE s` — uppercase after whitespace/start, lowercase
    /// elsewhere.
    StrTitle,
    /// Function 46: `TRIM s` — strip leading/trailing whitespace.
    StrTrim,
    /// Function 47: `STR.REVERSE s` — reverse the characters.
    StrReverse,
    /// Function 48: `STR.TAKE n s` — the first `n` characters (clamped).
    StrTake,
    /// Function 49: `STR.DROP n s` — without the first `n` characters (clamped).
    StrDrop,
    /// Function 50: `STR.LEN s` — number of characters.
    StrLen,
    /// Functions 51–52: `SPLIT(sep) s` — split into a word list.
    StrSplit(Separator),
    /// Functions 53–54: `JOIN(sep) ws` — join a word list into a string.
    StrJoin(Separator),
    /// Function 55: `WORDS.REVERSE ws` — reverse the word order.
    WordsReverse,
    /// Function 56: `WORDS.SORT ws` — sort words lexicographically.
    WordsSort,
    /// Function 57: `WORDS.HEAD ws` — first word or the empty string.
    WordsHead,
    /// Function 58: `WORDS.LAST ws` — last word or the empty string.
    WordsLast,
    /// Function 59: `WORDS.COUNT ws` — number of words.
    WordsCount,
}

impl Function {
    /// The number of functions in the paper's list DSL.
    pub const COUNT: usize = 41;

    /// The number of operators in the string-transformation domain.
    pub const STRING_COUNT: usize = 18;

    /// The total number of operators across all domains
    /// (`Function::EXTENDED.len()`).
    pub const EXTENDED_COUNT: usize = Function::COUNT + Function::STRING_COUNT;

    /// All 41 list-DSL functions ordered by their paper id (1..=41). This is
    /// the list domain's vocabulary — its order is load-bearing for RNG draw
    /// sequences and learned-encoder token ids, so it must never change.
    pub const ALL: [Function; Function::COUNT] = [
        Function::Access,
        Function::Count(IntPredicate::Positive),
        Function::Count(IntPredicate::Negative),
        Function::Count(IntPredicate::Odd),
        Function::Count(IntPredicate::Even),
        Function::Head,
        Function::Last,
        Function::Minimum,
        Function::Maximum,
        Function::Search,
        Function::Sum,
        Function::Delete,
        Function::Drop,
        Function::Filter(IntPredicate::Positive),
        Function::Filter(IntPredicate::Negative),
        Function::Filter(IntPredicate::Odd),
        Function::Filter(IntPredicate::Even),
        Function::Insert,
        Function::Map(MapOp::AddOne),
        Function::Map(MapOp::SubOne),
        Function::Map(MapOp::Mul2),
        Function::Map(MapOp::Mul3),
        Function::Map(MapOp::Mul4),
        Function::Map(MapOp::Div2),
        Function::Map(MapOp::Div3),
        Function::Map(MapOp::Div4),
        Function::Map(MapOp::Negate),
        Function::Map(MapOp::Square),
        Function::Reverse,
        Function::Scanl1(BinOp::Add),
        Function::Scanl1(BinOp::Sub),
        Function::Scanl1(BinOp::Mul),
        Function::Scanl1(BinOp::Min),
        Function::Scanl1(BinOp::Max),
        Function::Sort,
        Function::Take,
        Function::ZipWith(BinOp::Add),
        Function::ZipWith(BinOp::Sub),
        Function::ZipWith(BinOp::Mul),
        Function::ZipWith(BinOp::Min),
        Function::ZipWith(BinOp::Max),
    ];

    /// The 18 string-domain operators ordered by their id (42..=59).
    pub const STRING_OPS: [Function; Function::STRING_COUNT] = [
        Function::StrConcat,
        Function::StrUpper,
        Function::StrLower,
        Function::StrTitle,
        Function::StrTrim,
        Function::StrReverse,
        Function::StrTake,
        Function::StrDrop,
        Function::StrLen,
        Function::StrSplit(Separator::Space),
        Function::StrSplit(Separator::Comma),
        Function::StrJoin(Separator::Space),
        Function::StrJoin(Separator::Comma),
        Function::WordsReverse,
        Function::WordsSort,
        Function::WordsHead,
        Function::WordsLast,
        Function::WordsCount,
    ];

    /// Every operator of every domain, ordered by id (1..=59). The global id
    /// space: list ids keep the paper numbering, string ids continue at 42.
    /// Append-only — see the type-level docs.
    pub const EXTENDED: [Function; Function::EXTENDED_COUNT] = {
        let mut all = [Function::Access; Function::EXTENDED_COUNT];
        let mut i = 0;
        while i < Function::COUNT {
            all[i] = Function::ALL[i];
            i += 1;
        }
        let mut j = 0;
        while j < Function::STRING_COUNT {
            all[Function::COUNT + j] = Function::STRING_OPS[j];
            j += 1;
        }
        all
    };

    /// Stable id of this function (1..=41 list DSL, paper numbering;
    /// 42..=59 string domain).
    #[must_use]
    pub fn id(self) -> u8 {
        // Position in EXTENDED + 1; a linear scan over 59 entries is cheap
        // and keeps EXTENDED the single source of truth for the numbering.
        Function::EXTENDED
            .iter()
            .position(|f| *f == self)
            .map(|i| (i + 1) as u8)
            .expect("every Function variant is present in Function::EXTENDED")
    }

    /// Looks a function up by its stable id.
    ///
    /// # Errors
    ///
    /// Returns [`DslError::UnknownFunctionId`] if `id` is not in `1..=59`.
    pub fn from_id(id: u8) -> Result<Function, DslError> {
        if id == 0 || id as usize > Function::EXTENDED_COUNT {
            return Err(DslError::UnknownFunctionId(id));
        }
        Ok(Function::EXTENDED[id as usize - 1])
    }

    /// Zero-based index of this function (`id() - 1`), handy for one-hot
    /// encodings and probability maps.
    #[must_use]
    pub fn index(self) -> usize {
        self.id() as usize - 1
    }

    /// The function's type signature.
    #[must_use]
    pub fn signature(self) -> Signature {
        use Type::{Int, List, Str, StrList};
        let (inputs, output): (&'static [Type], Type) = match self {
            Function::Head
            | Function::Last
            | Function::Minimum
            | Function::Maximum
            | Function::Sum
            | Function::Count(_) => (&[List], Int),
            Function::Access | Function::Search => (&[Int, List], Int),
            Function::Reverse
            | Function::Sort
            | Function::Map(_)
            | Function::Filter(_)
            | Function::Scanl1(_) => (&[List], List),
            Function::Take | Function::Drop | Function::Delete | Function::Insert => {
                (&[Int, List], List)
            }
            Function::ZipWith(_) => (&[List, List], List),
            Function::StrConcat => (&[Str, Str], Str),
            Function::StrUpper
            | Function::StrLower
            | Function::StrTitle
            | Function::StrTrim
            | Function::StrReverse => (&[Str], Str),
            Function::StrTake | Function::StrDrop => (&[Int, Str], Str),
            Function::StrLen => (&[Str], Int),
            Function::StrSplit(_) => (&[Str], StrList),
            Function::StrJoin(_) | Function::WordsHead | Function::WordsLast => (&[StrList], Str),
            Function::WordsReverse | Function::WordsSort => (&[StrList], StrList),
            Function::WordsCount => (&[StrList], Int),
        };
        Signature { inputs, output }
    }

    /// Return type of the function.
    #[must_use]
    pub fn output_type(self) -> Type {
        self.signature().output
    }

    /// Whether the function produces a single integer ("singleton" output).
    #[must_use]
    pub fn returns_int(self) -> bool {
        self.output_type() == Type::Int
    }

    /// Number of arguments (1 or 2).
    #[must_use]
    pub fn arity(self) -> usize {
        self.signature().inputs.len()
    }

    /// Evaluates the function. Arguments are matched by position against the
    /// signature; values of the wrong type are coerced to the type's default
    /// (0 / empty list) as specified in Appendix A.
    #[must_use]
    pub fn apply(self, args: &[Value]) -> Value {
        // Arity is at most 2, so borrowing never allocates.
        match args {
            [] => self.apply_refs(&[]),
            [a] => self.apply_refs(&[a]),
            [a, b, ..] => self.apply_refs(&[a, b]),
        }
    }

    /// Evaluates the function on borrowed arguments — identical semantics to
    /// [`Function::apply`], but callers that already hold references (the
    /// interpreter resolves every argument to a prior statement's output, a
    /// program input or a default) avoid cloning list values just to build
    /// the argument slice.
    #[must_use]
    pub fn apply_refs(self, args: &[&Value]) -> Value {
        let int_arg = |i: usize| args.get(i).map_or(0, |v| v.int_or_default());
        // Read-only list access: no copy at all.
        let list_ref = |i: usize| args.get(i).map_or(&[][..], |v| v.as_list().unwrap_or(&[]));
        // Owned list access for functions that transform in place: one copy.
        let list_arg = |i: usize| args.get(i).map_or_else(Vec::new, |v| v.list_or_default());
        // Read-only string / word-list access (string domain).
        let str_ref = |i: usize| args.get(i).map_or("", |v| v.as_str_val().unwrap_or(""));
        let words_ref = |i: usize| {
            args.get(i)
                .map_or(&[][..], |v| v.as_str_list().unwrap_or(&[]))
        };
        match self {
            Function::Head => {
                let xs = list_ref(0);
                Value::Int(xs.first().copied().unwrap_or(0))
            }
            Function::Last => {
                let xs = list_ref(0);
                Value::Int(xs.last().copied().unwrap_or(0))
            }
            Function::Minimum => {
                let xs = list_ref(0);
                Value::Int(xs.iter().copied().min().unwrap_or(0))
            }
            Function::Maximum => {
                let xs = list_ref(0);
                Value::Int(xs.iter().copied().max().unwrap_or(0))
            }
            Function::Sum => {
                let xs = list_ref(0);
                Value::Int(xs.iter().fold(0_i64, |acc, &x| acc.saturating_add(x)))
            }
            Function::Count(p) => {
                let xs = list_ref(0);
                Value::Int(xs.iter().filter(|&&x| p.eval(x)).count() as i64)
            }
            Function::Access => {
                let n = int_arg(0);
                let xs = list_ref(1);
                if n >= 0 && (n as usize) < xs.len() {
                    Value::Int(xs[n as usize])
                } else {
                    Value::Int(0)
                }
            }
            Function::Search => {
                let x = int_arg(0);
                let xs = list_ref(1);
                Value::Int(xs.iter().position(|&v| v == x).map_or(-1, |idx| idx as i64))
            }
            Function::Reverse => {
                let mut xs = list_arg(0);
                xs.reverse();
                Value::List(xs)
            }
            Function::Sort => {
                let mut xs = list_arg(0);
                xs.sort_unstable();
                Value::List(xs)
            }
            Function::Map(op) => {
                let xs = list_ref(0);
                Value::List(xs.iter().map(|&x| op.eval(x)).collect())
            }
            Function::Filter(p) => {
                let xs = list_ref(0);
                Value::List(xs.iter().copied().filter(|&x| p.eval(x)).collect())
            }
            Function::Scanl1(op) => {
                let xs = list_ref(0);
                let mut out = Vec::with_capacity(xs.len());
                for (i, &x) in xs.iter().enumerate() {
                    if i == 0 {
                        out.push(x);
                    } else {
                        let prev = out[i - 1];
                        out.push(op.eval(x, prev));
                    }
                }
                Value::List(out)
            }
            Function::Take => {
                let n = int_arg(0);
                let xs = list_ref(1);
                let n = n.clamp(0, xs.len() as i64) as usize;
                Value::List(xs[..n].to_vec())
            }
            Function::Drop => {
                let n = int_arg(0);
                let xs = list_ref(1);
                let n = n.clamp(0, xs.len() as i64) as usize;
                Value::List(xs[n..].to_vec())
            }
            Function::Delete => {
                let x = int_arg(0);
                let xs = list_ref(1);
                Value::List(xs.iter().copied().filter(|&v| v != x).collect())
            }
            Function::Insert => {
                let x = int_arg(0);
                let xs = list_ref(1);
                let mut out = Vec::with_capacity(xs.len() + 1);
                out.extend_from_slice(xs);
                out.push(x);
                Value::List(out)
            }
            Function::ZipWith(op) => {
                let xs = list_ref(0);
                let ys = list_ref(1);
                Value::List(
                    xs.iter()
                        .zip(ys.iter())
                        .map(|(&a, &b)| op.eval(a, b))
                        .collect(),
                )
            }
            Function::StrConcat => {
                let a = str_ref(0);
                let b = str_ref(1);
                let mut out = String::with_capacity(a.len() + b.len());
                out.push_str(a);
                out.push_str(b);
                Value::Str(out)
            }
            Function::StrUpper => Value::Str(str_ref(0).to_uppercase()),
            Function::StrLower => Value::Str(str_ref(0).to_lowercase()),
            Function::StrTitle => {
                let s = str_ref(0);
                let mut out = String::with_capacity(s.len());
                let mut boundary = true;
                for c in s.chars() {
                    if c.is_whitespace() {
                        boundary = true;
                        out.push(c);
                    } else if boundary {
                        out.extend(c.to_uppercase());
                        boundary = false;
                    } else {
                        out.extend(c.to_lowercase());
                    }
                }
                Value::Str(out)
            }
            Function::StrTrim => Value::Str(str_ref(0).trim().to_string()),
            Function::StrReverse => Value::Str(str_ref(0).chars().rev().collect()),
            Function::StrTake => {
                let n = int_arg(0).max(0) as usize;
                Value::Str(str_ref(1).chars().take(n).collect())
            }
            Function::StrDrop => {
                let n = int_arg(0).max(0) as usize;
                Value::Str(str_ref(1).chars().skip(n).collect())
            }
            Function::StrLen => Value::Int(str_ref(0).chars().count() as i64),
            Function::StrSplit(Separator::Space) => {
                Value::StrList(str_ref(0).split_whitespace().map(str::to_string).collect())
            }
            Function::StrSplit(Separator::Comma) => Value::StrList(
                str_ref(0)
                    .split(',')
                    .map(|piece| piece.trim().to_string())
                    .collect(),
            ),
            Function::StrJoin(sep) => {
                let glue = match sep {
                    Separator::Space => " ",
                    Separator::Comma => ",",
                };
                Value::Str(words_ref(0).join(glue))
            }
            Function::WordsReverse => {
                let mut ws = words_ref(0).to_vec();
                ws.reverse();
                Value::StrList(ws)
            }
            Function::WordsSort => {
                let mut ws = words_ref(0).to_vec();
                ws.sort_unstable();
                Value::StrList(ws)
            }
            Function::WordsHead => Value::Str(words_ref(0).first().cloned().unwrap_or_default()),
            Function::WordsLast => Value::Str(words_ref(0).last().cloned().unwrap_or_default()),
            Function::WordsCount => Value::Int(words_ref(0).len() as i64),
        }
    }

    /// Canonical name, e.g. `FILTER(>0)`, `MAP(*2)`, `ZIPWITH(max)`.
    #[must_use]
    pub fn name(self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Function::Access => write!(f, "ACCESS"),
            Function::Count(p) => write!(f, "COUNT({})", p.symbol()),
            Function::Head => write!(f, "HEAD"),
            Function::Last => write!(f, "LAST"),
            Function::Minimum => write!(f, "MINIMUM"),
            Function::Maximum => write!(f, "MAXIMUM"),
            Function::Search => write!(f, "SEARCH"),
            Function::Sum => write!(f, "SUM"),
            Function::Delete => write!(f, "DELETE"),
            Function::Drop => write!(f, "DROP"),
            Function::Filter(p) => write!(f, "FILTER({})", p.symbol()),
            Function::Insert => write!(f, "INSERT"),
            Function::Map(op) => write!(f, "MAP({})", op.symbol()),
            Function::Reverse => write!(f, "REVERSE"),
            Function::Scanl1(op) => write!(f, "SCANL1({})", op.symbol()),
            Function::Sort => write!(f, "SORT"),
            Function::Take => write!(f, "TAKE"),
            Function::ZipWith(op) => write!(f, "ZIPWITH({})", op.symbol()),
            Function::StrConcat => write!(f, "CONCAT"),
            Function::StrUpper => write!(f, "UPPER"),
            Function::StrLower => write!(f, "LOWER"),
            Function::StrTitle => write!(f, "TITLE"),
            Function::StrTrim => write!(f, "TRIM"),
            Function::StrReverse => write!(f, "STR.REVERSE"),
            Function::StrTake => write!(f, "STR.TAKE"),
            Function::StrDrop => write!(f, "STR.DROP"),
            Function::StrLen => write!(f, "STR.LEN"),
            Function::StrSplit(sep) => write!(f, "SPLIT({})", sep.symbol()),
            Function::StrJoin(sep) => write!(f, "JOIN({})", sep.symbol()),
            Function::WordsReverse => write!(f, "WORDS.REVERSE"),
            Function::WordsSort => write!(f, "WORDS.SORT"),
            Function::WordsHead => write!(f, "WORDS.HEAD"),
            Function::WordsLast => write!(f, "WORDS.LAST"),
            Function::WordsCount => write!(f, "WORDS.COUNT"),
        }
    }
}

impl FromStr for Function {
    type Err = DslError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.trim().to_uppercase().replace(' ', "");
        for func in Function::EXTENDED {
            if func.to_string().to_uppercase().replace(' ', "") == normalized {
                return Ok(func);
            }
        }
        // Accept lambda symbols in their original case (e.g. "min") too.
        let lower_keep = s.trim().replace(' ', "");
        for func in Function::EXTENDED {
            if func
                .to_string()
                .replace(' ', "")
                .eq_ignore_ascii_case(&lower_keep)
            {
                return Ok(func);
            }
        }
        Err(DslError::UnknownFunctionName(s.trim().to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_41_unique_functions() {
        assert_eq!(Function::ALL.len(), 41);
        let mut seen = std::collections::HashSet::new();
        for f in Function::ALL {
            assert!(seen.insert(f), "duplicate function {f}");
        }
    }

    #[test]
    fn extended_has_59_unique_functions() {
        assert_eq!(Function::EXTENDED.len(), 59);
        assert_eq!(Function::EXTENDED[..Function::COUNT], Function::ALL);
        assert_eq!(Function::EXTENDED[Function::COUNT..], Function::STRING_OPS);
        let mut seen = std::collections::HashSet::new();
        for f in Function::EXTENDED {
            assert!(seen.insert(f), "duplicate function {f}");
        }
    }

    #[test]
    fn id_round_trip() {
        for (i, f) in Function::EXTENDED.iter().enumerate() {
            assert_eq!(f.id() as usize, i + 1);
            assert_eq!(Function::from_id(f.id()).unwrap(), *f);
            assert_eq!(f.index(), i);
        }
        assert!(Function::from_id(0).is_err());
        assert!(Function::from_id(60).is_err());
    }

    #[test]
    fn paper_numbering_spot_checks() {
        assert_eq!(Function::from_id(1).unwrap(), Function::Access);
        assert_eq!(Function::from_id(6).unwrap(), Function::Head);
        assert_eq!(Function::from_id(11).unwrap(), Function::Sum);
        assert_eq!(Function::from_id(12).unwrap(), Function::Delete);
        assert_eq!(Function::from_id(13).unwrap(), Function::Drop);
        assert_eq!(Function::from_id(18).unwrap(), Function::Insert);
        assert_eq!(Function::from_id(19).unwrap(), Function::Map(MapOp::AddOne));
        assert_eq!(Function::from_id(29).unwrap(), Function::Reverse);
        assert_eq!(Function::from_id(30).unwrap(), Function::Scanl1(BinOp::Add));
        assert_eq!(Function::from_id(35).unwrap(), Function::Sort);
        assert_eq!(Function::from_id(36).unwrap(), Function::Take);
        assert_eq!(
            Function::from_id(37).unwrap(),
            Function::ZipWith(BinOp::Add)
        );
        assert_eq!(
            Function::from_id(41).unwrap(),
            Function::ZipWith(BinOp::Max)
        );
        assert_eq!(Function::from_id(42).unwrap(), Function::StrConcat);
        assert_eq!(
            Function::from_id(51).unwrap(),
            Function::StrSplit(Separator::Space)
        );
        assert_eq!(Function::from_id(59).unwrap(), Function::WordsCount);
    }

    #[test]
    fn singleton_functions_are_one_through_eleven() {
        for f in Function::ALL {
            if f.id() <= 11 {
                assert!(f.returns_int(), "{f} should return int");
            } else {
                assert!(!f.returns_int(), "{f} should return a list");
            }
        }
    }

    #[test]
    fn signatures_have_valid_arity() {
        for f in Function::EXTENDED {
            let sig = f.signature();
            assert!(!sig.inputs.is_empty() && sig.inputs.len() <= 2);
            assert_eq!(f.arity(), sig.inputs.len());
        }
    }

    #[test]
    fn head_last_min_max_sum() {
        let xs = Value::List(vec![3, -1, 7, 2]);
        assert_eq!(
            Function::Head.apply(std::slice::from_ref(&xs)),
            Value::Int(3)
        );
        assert_eq!(
            Function::Last.apply(std::slice::from_ref(&xs)),
            Value::Int(2)
        );
        assert_eq!(
            Function::Minimum.apply(std::slice::from_ref(&xs)),
            Value::Int(-1)
        );
        assert_eq!(
            Function::Maximum.apply(std::slice::from_ref(&xs)),
            Value::Int(7)
        );
        assert_eq!(Function::Sum.apply(&[xs]), Value::Int(11));
    }

    #[test]
    fn empty_list_reductions_return_zero() {
        let empty = Value::List(vec![]);
        for f in [
            Function::Head,
            Function::Last,
            Function::Minimum,
            Function::Maximum,
            Function::Sum,
        ] {
            assert_eq!(f.apply(std::slice::from_ref(&empty)), Value::Int(0));
        }
    }

    #[test]
    fn count_and_filter_predicates() {
        let xs = Value::List(vec![-2, -1, 0, 1, 2, 3]);
        assert_eq!(
            Function::Count(IntPredicate::Positive).apply(std::slice::from_ref(&xs)),
            Value::Int(3)
        );
        assert_eq!(
            Function::Count(IntPredicate::Negative).apply(std::slice::from_ref(&xs)),
            Value::Int(2)
        );
        assert_eq!(
            Function::Count(IntPredicate::Odd).apply(std::slice::from_ref(&xs)),
            Value::Int(3)
        );
        assert_eq!(
            Function::Count(IntPredicate::Even).apply(std::slice::from_ref(&xs)),
            Value::Int(3)
        );
        assert_eq!(
            Function::Filter(IntPredicate::Positive).apply(std::slice::from_ref(&xs)),
            Value::List(vec![1, 2, 3])
        );
        assert_eq!(
            Function::Filter(IntPredicate::Odd).apply(&[xs]),
            Value::List(vec![-1, 1, 3])
        );
    }

    #[test]
    fn odd_even_handle_negatives() {
        assert!(IntPredicate::Odd.eval(-3));
        assert!(!IntPredicate::Odd.eval(-4));
        assert!(IntPredicate::Even.eval(-4));
        assert!(!IntPredicate::Even.eval(-3));
    }

    #[test]
    fn access_and_search() {
        let xs = Value::List(vec![5, 6, 7]);
        assert_eq!(
            Function::Access.apply(&[Value::Int(1), xs.clone()]),
            Value::Int(6)
        );
        assert_eq!(
            Function::Access.apply(&[Value::Int(-1), xs.clone()]),
            Value::Int(0)
        );
        assert_eq!(
            Function::Access.apply(&[Value::Int(3), xs.clone()]),
            Value::Int(0)
        );
        assert_eq!(
            Function::Search.apply(&[Value::Int(7), xs.clone()]),
            Value::Int(2)
        );
        assert_eq!(Function::Search.apply(&[Value::Int(9), xs]), Value::Int(-1));
    }

    #[test]
    fn take_drop_delete_insert() {
        let xs = Value::List(vec![1, 2, 3, 2]);
        assert_eq!(
            Function::Take.apply(&[Value::Int(2), xs.clone()]),
            Value::List(vec![1, 2])
        );
        assert_eq!(
            Function::Take.apply(&[Value::Int(99), xs.clone()]),
            Value::List(vec![1, 2, 3, 2])
        );
        assert_eq!(
            Function::Take.apply(&[Value::Int(-1), xs.clone()]),
            Value::List(vec![])
        );
        assert_eq!(
            Function::Drop.apply(&[Value::Int(2), xs.clone()]),
            Value::List(vec![3, 2])
        );
        assert_eq!(
            Function::Drop.apply(&[Value::Int(99), xs.clone()]),
            Value::List(vec![])
        );
        assert_eq!(
            Function::Delete.apply(&[Value::Int(2), xs.clone()]),
            Value::List(vec![1, 3])
        );
        assert_eq!(
            Function::Insert.apply(&[Value::Int(9), xs]),
            Value::List(vec![1, 2, 3, 2, 9])
        );
    }

    #[test]
    fn map_sort_reverse_scan_zip() {
        let xs = Value::List(vec![3, 1, 2]);
        assert_eq!(
            Function::Map(MapOp::Mul2).apply(std::slice::from_ref(&xs)),
            Value::List(vec![6, 2, 4])
        );
        assert_eq!(
            Function::Sort.apply(std::slice::from_ref(&xs)),
            Value::List(vec![1, 2, 3])
        );
        assert_eq!(
            Function::Reverse.apply(std::slice::from_ref(&xs)),
            Value::List(vec![2, 1, 3])
        );
        assert_eq!(
            Function::Scanl1(BinOp::Add).apply(std::slice::from_ref(&xs)),
            Value::List(vec![3, 4, 6])
        );
        assert_eq!(
            Function::Scanl1(BinOp::Max).apply(&[Value::List(vec![1, 5, 2, 7])]),
            Value::List(vec![1, 5, 5, 7])
        );
        let ys = Value::List(vec![10, 20]);
        assert_eq!(
            Function::ZipWith(BinOp::Add).apply(&[xs, ys]),
            Value::List(vec![13, 21])
        );
    }

    #[test]
    fn scanl1_matches_paper_semantics() {
        // O_n = lambda(I_n, O_{n-1}) for n > 0.
        let xs = Value::List(vec![5, 2, 8]);
        assert_eq!(
            Function::Scanl1(BinOp::Sub).apply(&[xs]),
            // O_0 = 5, O_1 = 2 - 5 = -3, O_2 = 8 - (-3) = 11
            Value::List(vec![5, -3, 11])
        );
    }

    #[test]
    fn saturating_arithmetic_never_panics() {
        let huge = Value::List(vec![i64::MAX, i64::MIN, 2]);
        for f in [
            Function::Map(MapOp::Square),
            Function::Map(MapOp::Mul4),
            Function::Map(MapOp::Negate),
            Function::Scanl1(BinOp::Mul),
            Function::Sum,
        ] {
            let _ = f.apply(std::slice::from_ref(&huge));
        }
        let _ = Function::ZipWith(BinOp::Mul).apply(&[huge.clone(), huge]);
    }

    #[test]
    fn type_mismatch_falls_back_to_defaults() {
        // Passing an Int where a list is expected behaves like the empty list.
        assert_eq!(Function::Sum.apply(&[Value::Int(5)]), Value::Int(0));
        // Passing a List where an int is expected behaves like 0.
        assert_eq!(
            Function::Take.apply(&[Value::List(vec![1]), Value::List(vec![7, 8])]),
            Value::List(vec![])
        );
        // Missing arguments behave like defaults.
        assert_eq!(Function::Head.apply(&[]), Value::Int(0));
    }

    #[test]
    fn display_and_parse_round_trip() {
        for f in Function::EXTENDED {
            let s = f.to_string();
            let parsed: Function = s.parse().unwrap();
            assert_eq!(parsed, f, "round-trip failed for {s}");
        }
        assert!("NOPE".parse::<Function>().is_err());
    }

    #[test]
    fn string_ops_semantics_spot_checks() {
        let s = |t: &str| Value::Str(t.to_string());
        let ws = |items: &[&str]| Value::StrList(items.iter().map(|w| w.to_string()).collect());
        assert_eq!(
            Function::StrConcat.apply(&[s("foo"), s("bar")]),
            s("foobar")
        );
        assert_eq!(Function::StrUpper.apply(&[s("aBc")]), s("ABC"));
        assert_eq!(Function::StrLower.apply(&[s("aBc")]), s("abc"));
        assert_eq!(
            Function::StrTitle.apply(&[s("hello wORLD")]),
            s("Hello World")
        );
        assert_eq!(Function::StrTrim.apply(&[s("  hi  ")]), s("hi"));
        assert_eq!(Function::StrReverse.apply(&[s("abc")]), s("cba"));
        assert_eq!(
            Function::StrTake.apply(&[Value::Int(2), s("abcd")]),
            s("ab")
        );
        assert_eq!(Function::StrTake.apply(&[Value::Int(-3), s("abcd")]), s(""));
        assert_eq!(
            Function::StrDrop.apply(&[Value::Int(2), s("abcd")]),
            s("cd")
        );
        assert_eq!(Function::StrDrop.apply(&[Value::Int(99), s("abcd")]), s(""));
        assert_eq!(Function::StrLen.apply(&[s("héllo")]), Value::Int(5));
        assert_eq!(
            Function::StrSplit(Separator::Space).apply(&[s("  a  b c ")]),
            ws(&["a", "b", "c"])
        );
        assert_eq!(
            Function::StrSplit(Separator::Comma).apply(&[s("a, b ,c")]),
            ws(&["a", "b", "c"])
        );
        assert_eq!(
            Function::StrSplit(Separator::Space).apply(&[s("")]),
            ws(&[])
        );
        assert_eq!(
            Function::StrSplit(Separator::Comma).apply(&[s("")]),
            ws(&[""])
        );
        assert_eq!(
            Function::StrJoin(Separator::Space).apply(&[ws(&["a", "b"])]),
            s("a b")
        );
        assert_eq!(
            Function::StrJoin(Separator::Comma).apply(&[ws(&["a", "b"])]),
            s("a,b")
        );
        assert_eq!(
            Function::WordsReverse.apply(&[ws(&["a", "b", "c"])]),
            ws(&["c", "b", "a"])
        );
        assert_eq!(
            Function::WordsSort.apply(&[ws(&["b", "a", "c"])]),
            ws(&["a", "b", "c"])
        );
        assert_eq!(Function::WordsHead.apply(&[ws(&["x", "y"])]), s("x"));
        assert_eq!(Function::WordsLast.apply(&[ws(&["x", "y"])]), s("y"));
        assert_eq!(Function::WordsHead.apply(&[ws(&[])]), s(""));
        assert_eq!(
            Function::WordsCount.apply(&[ws(&["x", "y"])]),
            Value::Int(2)
        );
    }

    #[test]
    fn string_ops_coerce_wrong_types_to_defaults() {
        // List-domain values fall back to the string defaults ("" / []).
        assert_eq!(
            Function::StrUpper.apply(&[Value::List(vec![1, 2])]),
            Value::Str(String::new())
        );
        assert_eq!(Function::StrLen.apply(&[Value::Int(7)]), Value::Int(0));
        assert_eq!(
            Function::WordsCount.apply(&[Value::Str("a b".to_string())]),
            Value::Int(0)
        );
        assert_eq!(Function::StrConcat.apply(&[]), Value::Str(String::new()));
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        assert_eq!(" head ".parse::<Function>().unwrap(), Function::Head);
        assert_eq!(
            "filter(>0)".parse::<Function>().unwrap(),
            Function::Filter(IntPredicate::Positive)
        );
        assert_eq!(
            "zipwith(MAX)".parse::<Function>().unwrap(),
            Function::ZipWith(BinOp::Max)
        );
    }

    #[test]
    fn serde_round_trip() {
        for f in Function::EXTENDED {
            let json = serde_json::to_string(&f).unwrap();
            let back: Function = serde_json::from_str(&json).unwrap();
            assert_eq!(back, f);
        }
    }
}
