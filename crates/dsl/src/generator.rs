//! Random generation of programs, inputs and specifications.
//!
//! Used both to create the NN-FF training corpus and to create the evaluation
//! suite (100 random test programs per length, half producing a singleton
//! integer and half producing a list).

use crate::dce::{effective_length, has_dead_code};
use crate::domain::DomainId;
use crate::error::DslError;
use crate::function::Function;
use crate::program::{Program, ProgramKind};
use crate::spec::IoSpec;
use crate::value::{Type, Value};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for random program / input / specification generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// The operator-vocabulary domain programs are drawn from.
    pub domain: DomainId,
    /// Length (number of statements) of generated programs.
    pub program_length: usize,
    /// Inclusive range of generated input-list lengths (and, for the string
    /// domain, of generated word counts).
    pub list_len_range: (usize, usize),
    /// Inclusive range of generated integer values.
    pub int_range: (i64, i64),
    /// Types of the program inputs. Defaults to the domain's default inputs.
    pub input_types: Vec<Type>,
    /// Reject candidate programs that contain dead code.
    pub require_no_dead_code: bool,
    /// Only accept programs of this output kind, when set.
    pub required_kind: Option<ProgramKind>,
    /// Reject programs whose outputs are identical across sample inputs
    /// (their specification would under-constrain the search).
    pub require_varying_output: bool,
    /// Maximum number of rejection-sampling attempts before giving up.
    pub max_attempts: usize,
}

impl GeneratorConfig {
    /// A list-domain configuration for programs of the given length with the
    /// defaults used throughout the paper reproduction.
    #[must_use]
    pub fn for_length(program_length: usize) -> Self {
        GeneratorConfig::for_domain(DomainId::List, program_length)
    }

    /// A configuration for programs of the given length drawn from `domain`,
    /// with the domain's default input types.
    #[must_use]
    pub fn for_domain(domain: DomainId, program_length: usize) -> Self {
        GeneratorConfig {
            domain,
            program_length,
            list_len_range: (4, 12),
            int_range: (-64, 64),
            input_types: domain.default_input_types().to_vec(),
            require_no_dead_code: true,
            required_kind: None,
            require_varying_output: true,
            max_attempts: 20_000,
        }
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig::for_length(5)
    }
}

/// Random generator for programs, inputs and input-output specifications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Generator {
    config: GeneratorConfig,
}

impl Generator {
    /// Creates a generator from a configuration.
    #[must_use]
    pub fn new(config: GeneratorConfig) -> Self {
        Generator { config }
    }

    /// The generator's configuration.
    #[must_use]
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Samples a uniformly random function from the configured domain's
    /// vocabulary. For the list domain the draw sequence is bit-identical to
    /// the pre-domain `Function::ALL[gen_range(0..41)]`.
    pub fn random_function<R: Rng + ?Sized>(&self, rng: &mut R) -> Function {
        let vocab = self.config.domain.vocab();
        vocab[rng.gen_range(0..vocab.len())]
    }

    /// Samples an unconstrained random program of the configured length.
    pub fn random_program<R: Rng + ?Sized>(&self, rng: &mut R) -> Program {
        (0..self.config.program_length)
            .map(|_| self.random_function(rng))
            .collect()
    }

    /// Samples a random integer within the configured range.
    pub fn random_int<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let (lo, hi) = self.config.int_range;
        rng.gen_range(lo..=hi)
    }

    /// Samples a random list of integers within the configured ranges.
    pub fn random_list<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<i64> {
        let (lo, hi) = self.config.list_len_range;
        let len = rng.gen_range(lo..=hi);
        (0..len).map(|_| self.random_int(rng)).collect()
    }

    /// Samples a random lowercase ASCII word of 1..=6 characters.
    pub fn random_word<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let len = rng.gen_range(1..=6);
        (0..len)
            .map(|_| char::from(b'a' + rng.gen_range(0..26_u8)))
            .collect()
    }

    /// Samples a random word list whose length follows `list_len_range`.
    pub fn random_words<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<String> {
        let (lo, hi) = self.config.list_len_range;
        let len = rng.gen_range(lo..=hi);
        (0..len).map(|_| self.random_word(rng)).collect()
    }

    /// Samples one set of program inputs matching the configured input types.
    pub fn random_inputs<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Value> {
        self.config
            .input_types
            .iter()
            .map(|ty| match ty {
                Type::Int => Value::Int(self.random_int(rng)),
                Type::List => Value::List(self.random_list(rng)),
                Type::Str => Value::Str(self.random_words(rng).join(" ")),
                Type::StrList => Value::StrList(self.random_words(rng)),
            })
            .collect()
    }

    /// Samples a program satisfying all configured constraints
    /// (no dead code, output kind, varying output), by rejection sampling.
    ///
    /// # Errors
    ///
    /// Returns [`DslError::GenerationExhausted`] if no program satisfying the
    /// constraints is found within `max_attempts` attempts.
    pub fn program<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Program, DslError> {
        for _ in 0..self.config.max_attempts {
            let candidate = self.random_program(rng);
            if self.accepts(&candidate, rng) {
                return Ok(candidate);
            }
        }
        Err(DslError::GenerationExhausted {
            constraint: format!(
                "length={}, no_dead_code={}, kind={:?}, varying_output={}",
                self.config.program_length,
                self.config.require_no_dead_code,
                self.config.required_kind,
                self.config.require_varying_output
            ),
            attempts: self.config.max_attempts,
        })
    }

    /// Whether `candidate` satisfies the configured structural and
    /// behavioural constraints.
    pub fn accepts<R: Rng + ?Sized>(&self, candidate: &Program, rng: &mut R) -> bool {
        if candidate.is_empty() {
            return false;
        }
        if let Some(kind) = self.config.required_kind {
            if candidate.kind() != Some(kind) {
                return false;
            }
        }
        if self.config.require_no_dead_code && has_dead_code(candidate, &self.config.input_types) {
            return false;
        }
        if self.config.require_varying_output {
            let outputs: Vec<Value> = (0..4)
                .filter_map(|_| candidate.output(&self.random_inputs(rng)).ok())
                .collect();
            if outputs.is_empty() {
                return false;
            }
            let first = &outputs[0];
            if outputs.iter().all(|o| o == first) {
                return false;
            }
            // Reject programs whose output is always the default value —
            // their specification carries no signal.
            if outputs.iter().all(Value::is_default) {
                return false;
            }
        }
        true
    }

    /// Generates a specification of `m` input-output examples for `program`.
    pub fn spec_for<R: Rng + ?Sized>(&self, program: &Program, m: usize, rng: &mut R) -> IoSpec {
        let inputs: Vec<Vec<Value>> = (0..m).map(|_| self.random_inputs(rng)).collect();
        IoSpec::from_program(program, &inputs)
    }

    /// Generates a synthesis task: a hidden target program together with a
    /// specification of `m` examples.
    ///
    /// # Errors
    ///
    /// Returns [`DslError::GenerationExhausted`] if no acceptable program is
    /// found within the configured attempt budget.
    pub fn task<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Result<SynthesisTask, DslError> {
        let target = self.program(rng)?;
        let spec = self.spec_for(&target, m, rng);
        Ok(SynthesisTask { target, spec })
    }
}

impl Default for Generator {
    fn default() -> Self {
        Generator::new(GeneratorConfig::default())
    }
}

/// A synthesis problem instance: the hidden target program and the
/// specification visible to the synthesizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisTask {
    /// The hidden target program (used only for oracle fitness and
    /// evaluation bookkeeping, never shown to the synthesizers).
    pub target: Program,
    /// The input-output examples given to the synthesizers.
    pub spec: IoSpec,
}

impl SynthesisTask {
    /// The target program's length.
    #[must_use]
    pub fn target_length(&self) -> usize {
        self.target.len()
    }

    /// The target program's effective (dead-code-free) length.
    #[must_use]
    pub fn effective_target_length(&self) -> usize {
        effective_length(&self.target, &self.spec.input_types())
    }

    /// Whether the target is a singleton or list program.
    #[must_use]
    pub fn kind(&self) -> Option<ProgramKind> {
        self.target.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn random_program_has_requested_length() {
        let gen = Generator::new(GeneratorConfig::for_length(7));
        let mut r = rng(1);
        for _ in 0..20 {
            assert_eq!(gen.random_program(&mut r).len(), 7);
        }
    }

    #[test]
    fn random_inputs_respect_ranges_and_types() {
        let mut config = GeneratorConfig::for_length(5);
        config.list_len_range = (2, 4);
        config.int_range = (-5, 5);
        config.input_types = vec![Type::List, Type::Int];
        let gen = Generator::new(config);
        let mut r = rng(2);
        for _ in 0..50 {
            let inputs = gen.random_inputs(&mut r);
            assert_eq!(inputs.len(), 2);
            match &inputs[0] {
                Value::List(xs) => {
                    assert!(xs.len() >= 2 && xs.len() <= 4);
                    assert!(xs.iter().all(|&x| (-5..=5).contains(&x)));
                }
                other => panic!("first input should be a list, got {other}"),
            }
            assert!(matches!(inputs[1], Value::Int(v) if (-5..=5).contains(&v)));
        }
    }

    #[test]
    fn constrained_program_has_no_dead_code() {
        let gen = Generator::new(GeneratorConfig::for_length(5));
        let mut r = rng(3);
        for _ in 0..10 {
            let p = gen.program(&mut r).unwrap();
            assert_eq!(p.len(), 5);
            assert!(!has_dead_code(&p, &[Type::List]));
        }
    }

    #[test]
    fn required_kind_is_respected() {
        for kind in [ProgramKind::Singleton, ProgramKind::List] {
            let mut config = GeneratorConfig::for_length(5);
            config.required_kind = Some(kind);
            let gen = Generator::new(config);
            let mut r = rng(4);
            for _ in 0..5 {
                let p = gen.program(&mut r).unwrap();
                assert_eq!(p.kind(), Some(kind));
            }
        }
    }

    #[test]
    fn generation_exhaustion_is_reported() {
        let mut config = GeneratorConfig::for_length(1);
        // A single-statement program can never have length-1 dead code, but
        // demanding varying output with a constant-int range of one value and
        // only 1 attempt will fail quickly for most draws; force failure by
        // zero attempts instead.
        config.max_attempts = 0;
        let gen = Generator::new(config);
        let mut r = rng(5);
        assert!(matches!(
            gen.program(&mut r),
            Err(DslError::GenerationExhausted { .. })
        ));
    }

    #[test]
    fn spec_for_produces_m_consistent_examples() {
        let gen = Generator::new(GeneratorConfig::for_length(5));
        let mut r = rng(6);
        let p = gen.program(&mut r).unwrap();
        let spec = gen.spec_for(&p, 5, &mut r);
        assert_eq!(spec.len(), 5);
        assert!(spec.is_satisfied_by(&p));
    }

    #[test]
    fn task_bundles_target_and_spec() {
        let gen = Generator::new(GeneratorConfig::for_length(5));
        let mut r = rng(7);
        let task = gen.task(5, &mut r).unwrap();
        assert_eq!(task.target_length(), 5);
        assert_eq!(task.effective_target_length(), 5);
        assert!(task.spec.is_satisfied_by(&task.target));
        assert!(task.kind().is_some());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = Generator::new(GeneratorConfig::for_length(5));
        let p1 = gen.program(&mut rng(42)).unwrap();
        let p2 = gen.program(&mut rng(42)).unwrap();
        let p3 = gen.program(&mut rng(43)).unwrap();
        assert_eq!(p1, p2);
        assert_ne!(p1, p3, "different seeds should virtually always differ");
    }

    #[test]
    fn string_domain_generates_string_programs_and_inputs() {
        let gen = Generator::new(GeneratorConfig::for_domain(DomainId::Str, 3));
        let mut r = rng(9);
        for _ in 0..20 {
            let f = gen.random_function(&mut r);
            assert!(
                Function::STRING_OPS.contains(&f),
                "{f} is not a string-domain operator"
            );
        }
        let inputs = gen.random_inputs(&mut r);
        assert_eq!(inputs.len(), 1);
        assert!(matches!(&inputs[0], Value::Str(s) if !s.is_empty()));
        // Constrained generation works end to end in the string domain.
        let task = gen.task(3, &mut r).unwrap();
        assert_eq!(task.target_length(), 3);
        assert!(task.spec.is_satisfied_by(&task.target));
        assert!(!has_dead_code(&task.target, &[Type::Str]));
    }

    #[test]
    fn list_domain_sampling_is_bit_identical_to_pre_domain_draws() {
        // The list domain's vocabulary is exactly Function::ALL, so sampling
        // must consume the same RNG stream as the historical
        // `Function::ALL[gen_range(0..41)]` — checkpoints and golden GA
        // trajectories depend on it.
        let gen = Generator::new(GeneratorConfig::for_length(5));
        let mut a = rng(10);
        let mut b = rng(10);
        for _ in 0..100 {
            let sampled = gen.random_function(&mut a);
            let legacy = Function::ALL[b.gen_range(0..Function::COUNT)];
            assert_eq!(sampled, legacy);
        }
    }

    #[test]
    fn accepts_rejects_empty_and_constant_programs() {
        let gen = Generator::new(GeneratorConfig::for_length(5));
        let mut r = rng(8);
        assert!(!gen.accepts(&Program::default(), &mut r));
        // A program whose output ignores the input entirely: HEAD of an empty
        // intermediate (TAKE 0) is always 0.
        let constant = Program::new(vec![Function::Take, Function::Head]);
        assert!(!gen.accepts(&constant, &mut r));
    }
}
