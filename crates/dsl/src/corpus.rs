//! Stratified training-corpus generation.
//!
//! The fig5/fig6 bench harness bins synthesis results by *program kind*
//! (singleton vs list output) and *program length*; this module generates
//! training tasks along exactly those strata, so a learned-fitness training
//! corpus can be balanced against the same bins the evaluation reports on
//! (the glass-box idea: the DSL itself is the corpus source).
//!
//! Generation is deterministic: every stratum derives its own RNG seed from
//! the corpus seed and the stratum's identity, so the corpus is reproducible
//! under a fixed seed and stable against re-ordering or subsetting of the
//! strata list.

use crate::domain::DomainId;
use crate::error::DslError;
use crate::generator::{Generator, GeneratorConfig, SynthesisTask};
use crate::program::ProgramKind;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One corpus stratum: a (program kind, program length) bin — the same bins
/// the fig5 harness reports synthesis rates over (fig6's per-function bins
/// fall out of the per-stratum function histogram, see
/// [`StratifiedCorpus::function_histogram`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CorpusStratum {
    /// Output kind of the stratum's programs.
    pub kind: ProgramKind,
    /// Length (number of statements) of the stratum's programs.
    pub length: usize,
}

/// Configuration for stratified corpus generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// The domain tasks are drawn from.
    pub domain: DomainId,
    /// Program lengths to cover (one stratum per kind × length).
    pub lengths: Vec<usize>,
    /// Program kinds to cover.
    pub kinds: Vec<ProgramKind>,
    /// Number of tasks generated per stratum.
    pub tasks_per_stratum: usize,
    /// Number of input-output examples per task.
    pub examples_per_task: usize,
    /// Corpus seed; each stratum derives its own RNG stream from it.
    pub seed: u64,
}

impl CorpusConfig {
    /// A small default corpus over lengths 1..=3, both kinds, for `domain`.
    #[must_use]
    pub fn small(domain: DomainId) -> Self {
        CorpusConfig {
            domain,
            lengths: vec![1, 2, 3],
            kinds: vec![ProgramKind::Singleton, ProgramKind::List],
            tasks_per_stratum: 8,
            examples_per_task: 5,
            seed: 7,
        }
    }

    /// The strata this configuration covers, in kind-major order.
    #[must_use]
    pub fn strata(&self) -> Vec<CorpusStratum> {
        let mut strata = Vec::with_capacity(self.kinds.len() * self.lengths.len());
        for &kind in &self.kinds {
            for &length in &self.lengths {
                strata.push(CorpusStratum { kind, length });
            }
        }
        strata
    }
}

/// One generated task together with the stratum it was generated for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusTask {
    /// The stratum this task belongs to.
    pub stratum: CorpusStratum,
    /// The task (hidden target + specification).
    pub task: SynthesisTask,
}

/// A stratified training corpus: tasks grouped by (kind, length) bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratifiedCorpus {
    config: CorpusConfig,
    tasks: Vec<CorpusTask>,
}

impl StratifiedCorpus {
    /// Generates the corpus described by `config`.
    ///
    /// # Errors
    ///
    /// Returns [`DslError::GenerationExhausted`] if some stratum cannot be
    /// filled within the generator's rejection-sampling budget (e.g. a kind
    /// the domain's vocabulary cannot produce at the requested length).
    pub fn generate(config: CorpusConfig) -> Result<StratifiedCorpus, DslError> {
        let mut tasks = Vec::with_capacity(config.strata().len() * config.tasks_per_stratum);
        for stratum in config.strata() {
            let mut generator_config = GeneratorConfig::for_domain(config.domain, stratum.length);
            generator_config.required_kind = Some(stratum.kind);
            let generator = Generator::new(generator_config);
            // Seed per stratum, not per corpus: the stream only depends on
            // the stratum's identity, so adding or reordering strata never
            // perturbs the tasks of existing ones.
            let mut rng = ChaCha8Rng::seed_from_u64(stratum_seed(config.seed, stratum));
            for _ in 0..config.tasks_per_stratum {
                let task = generator.task(config.examples_per_task, &mut rng)?;
                tasks.push(CorpusTask { stratum, task });
            }
        }
        Ok(StratifiedCorpus { config, tasks })
    }

    /// The configuration the corpus was generated from.
    #[must_use]
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Every task, grouped by stratum in `config.strata()` order.
    #[must_use]
    pub fn tasks(&self) -> &[CorpusTask] {
        &self.tasks
    }

    /// The tasks of one stratum.
    #[must_use]
    pub fn stratum_tasks(&self, stratum: CorpusStratum) -> Vec<&CorpusTask> {
        self.tasks.iter().filter(|t| t.stratum == stratum).collect()
    }

    /// Per-function usage counts across all target programs, indexed by the
    /// domain's token index — the corpus-side analogue of fig6's
    /// per-function bins (a zero entry flags an operator the corpus never
    /// exercises).
    #[must_use]
    pub fn function_histogram(&self) -> Vec<usize> {
        let domain = self.config.domain;
        let mut histogram = vec![0; domain.vocab_len()];
        for corpus_task in &self.tasks {
            for f in corpus_task.task.target.functions() {
                if let Some(i) = domain.token_index(*f) {
                    histogram[i] += 1;
                }
            }
        }
        histogram
    }
}

/// Mixes the corpus seed with a stratum's identity (splitmix64-style) so
/// sibling strata get decorrelated RNG streams.
fn stratum_seed(seed: u64, stratum: CorpusStratum) -> u64 {
    let kind_tag = match stratum.kind {
        ProgramKind::Singleton => 1_u64,
        ProgramKind::List => 2_u64,
    };
    let mut z =
        seed ^ (stratum.length as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (kind_tag << 32);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strata_enumerate_kind_by_length() {
        let config = CorpusConfig::small(DomainId::List);
        let strata = config.strata();
        assert_eq!(strata.len(), 6);
        assert_eq!(
            strata[0],
            CorpusStratum {
                kind: ProgramKind::Singleton,
                length: 1
            }
        );
        assert_eq!(
            strata[5],
            CorpusStratum {
                kind: ProgramKind::List,
                length: 3
            }
        );
    }

    #[test]
    fn stratum_seeds_differ_between_siblings() {
        let a = CorpusStratum {
            kind: ProgramKind::Singleton,
            length: 2,
        };
        let b = CorpusStratum {
            kind: ProgramKind::List,
            length: 2,
        };
        let c = CorpusStratum {
            kind: ProgramKind::Singleton,
            length: 3,
        };
        assert_ne!(stratum_seed(7, a), stratum_seed(7, b));
        assert_ne!(stratum_seed(7, a), stratum_seed(7, c));
        assert_ne!(stratum_seed(7, a), stratum_seed(8, a));
    }
}
