//! Programs: straight-line sequences of DSL functions.

use crate::error::DslError;
use crate::function::Function;
use crate::value::Type;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Whether a program produces a single integer or a list of integers.
///
/// The paper's evaluation splits its test suite into 50 "singleton" programs
/// (integer output) and 50 "list" programs per length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgramKind {
    /// The program's final statement returns an integer.
    Singleton,
    /// The program's final statement returns a list of integers.
    List,
}

impl fmt::Display for ProgramKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramKind::Singleton => write!(f, "singleton"),
            ProgramKind::List => write!(f, "list"),
        }
    }
}

/// A straight-line DSL program: an ordered sequence of function calls.
///
/// Programs are "valid by construction": any sequence of DSL functions is a
/// runnable program, which is what makes genetic crossover and mutation safe
/// without pruning.
///
/// # Examples
///
/// ```
/// use netsyn_dsl::{Function, IntPredicate, MapOp, Program, Value};
///
/// // The length-4 example from Table 1 of the paper.
/// let program = Program::new(vec![
///     Function::Filter(IntPredicate::Positive),
///     Function::Map(MapOp::Mul2),
///     Function::Sort,
///     Function::Reverse,
/// ]);
/// let out = program
///     .output(&[Value::List(vec![-2, 10, 3, -4, 5, 2])])
///     .expect("non-empty program");
/// assert_eq!(out, Value::List(vec![20, 10, 6, 4]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Program {
    functions: Vec<Function>,
}

impl Program {
    /// Creates a program from a sequence of functions.
    #[must_use]
    pub fn new(functions: Vec<Function>) -> Self {
        Program { functions }
    }

    /// Creates a program from 1-based stable function ids.
    ///
    /// # Errors
    ///
    /// Returns [`DslError::UnknownFunctionId`] if any id is outside `1..=59`.
    pub fn from_ids(ids: &[u8]) -> Result<Self, DslError> {
        let functions = ids
            .iter()
            .map(|&id| Function::from_id(id))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program::new(functions))
    }

    /// The paper's 1-based function ids of this program.
    #[must_use]
    pub fn ids(&self) -> Vec<u8> {
        self.functions.iter().map(|f| f.id()).collect()
    }

    /// Number of statements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the program has no statements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// The functions of the program in execution order.
    #[must_use]
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Consumes the program and returns its functions.
    #[must_use]
    pub fn into_functions(self) -> Vec<Function> {
        self.functions
    }

    /// The function at position `index`, if any.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Function> {
        self.functions.get(index).copied()
    }

    /// Returns a copy of the program with the function at `index` replaced.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn with_replaced(&self, index: usize, function: Function) -> Program {
        assert!(index < self.len(), "index {index} out of bounds");
        let mut functions = self.functions.clone();
        functions[index] = function;
        Program::new(functions)
    }

    /// Appends a function at the end of the program.
    pub fn push(&mut self, function: Function) {
        self.functions.push(function);
    }

    /// The output type of the final statement, if the program is non-empty.
    #[must_use]
    pub fn output_type(&self) -> Option<Type> {
        self.functions.last().map(|f| f.output_type())
    }

    /// Whether this is a singleton-output or list-output program. Scalar
    /// outputs (`int`, `str`) are singletons; sequence outputs (`[int]`,
    /// `[str]`) are lists — the fig5 bins generalize across domains.
    ///
    /// Returns `None` for the empty program.
    #[must_use]
    pub fn kind(&self) -> Option<ProgramKind> {
        self.output_type().map(|t| match t {
            Type::Int | Type::Str => ProgramKind::Singleton,
            Type::List | Type::StrList => ProgramKind::List,
        })
    }

    /// Iterates over the functions.
    pub fn iter(&self) -> std::slice::Iter<'_, Function> {
        self.functions.iter()
    }
}

impl From<Vec<Function>> for Program {
    fn from(functions: Vec<Function>) -> Self {
        Program::new(functions)
    }
}

impl FromIterator<Function> for Program {
    fn from_iter<T: IntoIterator<Item = Function>>(iter: T) -> Self {
        Program::new(iter.into_iter().collect())
    }
}

impl IntoIterator for Program {
    type Item = Function;
    type IntoIter = std::vec::IntoIter<Function>;

    fn into_iter(self) -> Self::IntoIter {
        self.functions.into_iter()
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Function;
    type IntoIter = std::slice::Iter<'a, Function>;

    fn into_iter(self) -> Self::IntoIter {
        self.functions.iter()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.functions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

impl FromStr for Program {
    type Err = DslError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let functions = s
            .split([',', ';', '\n', '|'])
            .map(str::trim)
            .filter(|tok| !tok.is_empty())
            .map(Function::from_str)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| DslError::ParseProgram(e.to_string()))?;
        if functions.is_empty() {
            return Err(DslError::ParseProgram("no functions found".to_string()));
        }
        Ok(Program::new(functions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{IntPredicate, MapOp};

    fn table1_program() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
        ])
    }

    #[test]
    fn construction_and_accessors() {
        let p = table1_program();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.get(0), Some(Function::Filter(IntPredicate::Positive)));
        assert_eq!(p.get(4), None);
        assert_eq!(p.kind(), Some(ProgramKind::List));
        assert_eq!(p.output_type(), Some(Type::List));
    }

    #[test]
    fn empty_program_has_no_kind() {
        let p = Program::default();
        assert!(p.is_empty());
        assert_eq!(p.kind(), None);
        assert_eq!(p.output_type(), None);
    }

    #[test]
    fn singleton_kind_detection() {
        let p = Program::new(vec![Function::Sort, Function::Sum]);
        assert_eq!(p.kind(), Some(ProgramKind::Singleton));
    }

    #[test]
    fn ids_round_trip() {
        let p = table1_program();
        let ids = p.ids();
        let back = Program::from_ids(&ids).unwrap();
        assert_eq!(back, p);
        assert!(Program::from_ids(&[1, 99]).is_err());
    }

    #[test]
    fn with_replaced_creates_modified_copy() {
        let p = table1_program();
        let q = p.with_replaced(3, Function::Sum);
        assert_eq!(q.get(3), Some(Function::Sum));
        assert_eq!(p.get(3), Some(Function::Reverse));
        assert_eq!(q.kind(), Some(ProgramKind::Singleton));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn with_replaced_panics_out_of_bounds() {
        let _ = table1_program().with_replaced(10, Function::Sum);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let p = table1_program();
        let s = p.to_string();
        assert_eq!(s, "FILTER(>0), MAP(*2), SORT, REVERSE");
        let parsed: Program = s.parse().unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn parse_accepts_newlines_and_pipes() {
        let p: Program = "FILTER(>0)\nMAP(*2) | SORT; REVERSE".parse().unwrap();
        assert_eq!(p, table1_program());
        assert!("".parse::<Program>().is_err());
        assert!("FILTER(>0), BOGUS".parse::<Program>().is_err());
    }

    #[test]
    fn iteration_and_collection() {
        let p = table1_program();
        let collected: Program = p.iter().copied().collect();
        assert_eq!(collected, p);
        let v: Vec<Function> = p.clone().into_iter().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(p.clone().into_functions(), v);
    }

    #[test]
    fn serde_round_trip() {
        let p = table1_program();
        let json = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
