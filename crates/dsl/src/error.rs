//! Error types for the DSL crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, parsing or executing DSL programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DslError {
    /// A program with zero statements was executed or analyzed.
    EmptyProgram,
    /// A function identifier outside the registered id space was used.
    UnknownFunctionId(u8),
    /// A function name could not be parsed.
    UnknownFunctionName(String),
    /// A program string could not be parsed.
    ParseProgram(String),
    /// Program generation failed to satisfy the requested constraints
    /// within the configured number of attempts.
    GenerationExhausted {
        /// Constraint description for diagnostics.
        constraint: String,
        /// Number of attempts made.
        attempts: usize,
    },
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::EmptyProgram => write!(f, "program has no statements"),
            DslError::UnknownFunctionId(id) => {
                write!(f, "unknown DSL function id {id}, expected 1..=59")
            }
            DslError::UnknownFunctionName(name) => {
                write!(f, "unknown DSL function name `{name}`")
            }
            DslError::ParseProgram(msg) => write!(f, "could not parse program: {msg}"),
            DslError::GenerationExhausted {
                constraint,
                attempts,
            } => write!(
                f,
                "program generation could not satisfy `{constraint}` after {attempts} attempts"
            ),
        }
    }
}

impl Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            DslError::EmptyProgram,
            DslError::UnknownFunctionId(77),
            DslError::UnknownFunctionName("FOO".to_string()),
            DslError::ParseProgram("bad token".to_string()),
            DslError::GenerationExhausted {
                constraint: "no dead code".to_string(),
                attempts: 10,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            let first = s.chars().next().unwrap();
            assert!(first.is_lowercase() || first.is_numeric());
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error>() {}
        assert_error::<DslError>();
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DslError>();
    }
}
