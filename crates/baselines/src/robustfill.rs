//! RobustFill-style baseline: autoregressive sampling of whole programs.
//!
//! RobustFill (Devlin et al., ICML 2017) encodes the input-output examples
//! with recurrent networks and decodes a program one token at a time,
//! exploring the program space by sampling / beam-decoding from the learned
//! conditional distribution. This re-implementation keeps that search
//! structure on the NetSyn DSL: programs are sampled token-by-token from the
//! guidance model's conditional token distribution (per-function probability
//! renormalized at each step, with a repetition penalty standing in for the
//! decoder's recurrent state), and every sampled program is checked against
//! the specification.

use crate::guidance::GuidanceModel;
use crate::synthesizer::{SynthesisProblem, SynthesisResult, Synthesizer};
use netsyn_dsl::Program;
use netsyn_fitness::ProbabilityMap;
use netsyn_ga::SearchBudget;
use rand::{Rng, RngCore};

/// RobustFill-style synthesizer.
pub struct RobustFill<G> {
    guidance: G,
    /// Multiplicative penalty applied to a function's probability each time
    /// it has already been emitted in the current program (decoder memory).
    repetition_penalty: f64,
    /// Smoothing added to every function's probability so that sampling never
    /// collapses onto a handful of functions.
    smoothing: f64,
}

impl<G: GuidanceModel> RobustFill<G> {
    /// Creates a RobustFill baseline with the given guidance model.
    #[must_use]
    pub fn new(guidance: G) -> Self {
        RobustFill {
            guidance,
            repetition_penalty: 0.5,
            smoothing: 0.02,
        }
    }

    /// Overrides the repetition penalty (1.0 disables it).
    #[must_use]
    pub fn with_repetition_penalty(mut self, penalty: f64) -> Self {
        self.repetition_penalty = penalty.clamp(0.0, 1.0);
        self
    }

    fn sample_program(
        &self,
        map: &ProbabilityMap,
        length: usize,
        rng: &mut dyn RngCore,
    ) -> Program {
        let vocab = map.domain().vocab();
        let mut emitted_counts = vec![0u32; vocab.len()];
        let mut functions = Vec::with_capacity(length);
        for _ in 0..length {
            let weights: Vec<f64> = map
                .as_slice()
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    (p + self.smoothing) * self.repetition_penalty.powi(emitted_counts[i] as i32)
                })
                .collect();
            let index = weighted_sample(&weights, rng);
            emitted_counts[index] += 1;
            functions.push(vocab[index]);
        }
        Program::new(functions)
    }
}

fn weighted_sample(weights: &[f64], rng: &mut dyn RngCore) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut threshold = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if threshold < w {
            return i;
        }
        threshold -= w;
    }
    weights.len() - 1
}

impl<G: GuidanceModel> Synthesizer for RobustFill<G> {
    fn name(&self) -> &str {
        "RobustFill"
    }

    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        budget: &mut SearchBudget,
        rng: &mut dyn RngCore,
    ) -> SynthesisResult {
        let map = self.guidance.probability_map(&problem.spec);
        let mut evaluated = 0usize;
        while budget.try_consume() {
            evaluated += 1;
            let candidate = self.sample_program(&map, problem.target_length, rng);
            if problem.spec.is_satisfied_by(&candidate) {
                return SynthesisResult::found(candidate, evaluated);
            }
        }
        SynthesisResult::not_found(evaluated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guidance::UniformGuidance;
    use netsyn_dsl::{Function, IntPredicate, IoSpec, MapOp, Value};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, -5, 7, 2])],
                vec![Value::List(vec![4, 4, -1, 0, 9])],
            ],
        )
    }

    #[test]
    fn finds_target_with_informed_guidance() {
        let map = netsyn_fitness::ProbabilityMap::from_target(&target(), 0.001);
        let synthesizer = RobustFill::new(map);
        let problem = SynthesisProblem::new(spec(), 3);
        let mut budget = SearchBudget::new(100_000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        assert!(result.is_success());
        assert!(spec().is_satisfied_by(&result.solution.unwrap()));
    }

    #[test]
    fn sampled_programs_have_the_requested_length() {
        let synthesizer = RobustFill::new(UniformGuidance);
        let map = netsyn_fitness::ProbabilityMap::uniform();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for length in 1..=8 {
            let program = synthesizer.sample_program(&map, length, &mut rng);
            assert_eq!(program.len(), length);
        }
    }

    #[test]
    fn repetition_penalty_reduces_duplicate_functions() {
        let map =
            netsyn_fitness::ProbabilityMap::from_target(&Program::new(vec![Function::Sort]), 0.0);
        // Without smoothing-free penalty the sampler would emit SORT five
        // times; with the penalty it diversifies.
        let with_penalty = RobustFill::new(map.clone()).with_repetition_penalty(0.05);
        let without_penalty = RobustFill::new(map).with_repetition_penalty(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut duplicates_with = 0usize;
        let mut duplicates_without = 0usize;
        for _ in 0..100 {
            let a = with_penalty.sample_program(
                &netsyn_fitness::ProbabilityMap::from_target(
                    &Program::new(vec![Function::Sort]),
                    0.0,
                ),
                5,
                &mut rng,
            );
            let b = without_penalty.sample_program(
                &netsyn_fitness::ProbabilityMap::from_target(
                    &Program::new(vec![Function::Sort]),
                    0.0,
                ),
                5,
                &mut rng,
            );
            duplicates_with += a
                .functions()
                .iter()
                .filter(|&&f| f == Function::Sort)
                .count()
                .saturating_sub(1);
            duplicates_without += b
                .functions()
                .iter()
                .filter(|&&f| f == Function::Sort)
                .count()
                .saturating_sub(1);
        }
        assert!(duplicates_with < duplicates_without);
    }

    #[test]
    fn respects_the_budget() {
        let synthesizer = RobustFill::new(UniformGuidance);
        let problem = SynthesisProblem::new(spec(), 5);
        let mut budget = SearchBudget::new(200);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        assert_eq!(result.candidates_evaluated, 200);
        assert!(!result.is_success() || result.candidates_evaluated <= 200);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(RobustFill::new(UniformGuidance).name(), "RobustFill");
    }
}
