//! Guidance models: how the neural baselines obtain their per-function
//! probability estimates.
//!
//! DeepCoder, PCCoder and RobustFill all condition their search on a
//! prediction of which DSL functions are likely to appear in the target
//! program. In this reproduction that prediction comes from the same FP
//! network NetSyn uses (trained with `netsyn-fitness`), from a fixed map, or
//! from an uninformative uniform map (for ablations).

use netsyn_dsl::IoSpec;
use netsyn_fitness::{LearnedProbabilityModel, ProbabilityMap};

/// Produces a per-function probability map for a specification.
pub trait GuidanceModel: Send + Sync {
    /// Predicts the probability of each DSL function appearing in the target.
    fn probability_map(&self, spec: &IoSpec) -> ProbabilityMap;
}

impl GuidanceModel for LearnedProbabilityModel {
    fn probability_map(&self, spec: &IoSpec) -> ProbabilityMap {
        LearnedProbabilityModel::probability_map(self, spec)
    }
}

impl GuidanceModel for ProbabilityMap {
    fn probability_map(&self, _spec: &IoSpec) -> ProbabilityMap {
        self.clone()
    }
}

/// An uninformative guidance model assigning every function probability 0.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UniformGuidance;

impl GuidanceModel for UniformGuidance {
    fn probability_map(&self, _spec: &IoSpec) -> ProbabilityMap {
        ProbabilityMap::uniform()
    }
}

/// Blanket implementation for boxed guidance models.
impl<G: GuidanceModel + ?Sized> GuidanceModel for Box<G> {
    fn probability_map(&self, spec: &IoSpec) -> ProbabilityMap {
        (**self).probability_map(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{Function, Program};

    #[test]
    fn uniform_guidance_is_uninformative() {
        let map = UniformGuidance.probability_map(&IoSpec::default());
        assert!(map.as_slice().iter().all(|&p| (p - 0.5).abs() < 1e-12));
    }

    #[test]
    fn probability_map_is_its_own_guidance() {
        let target = Program::new(vec![Function::Sort, Function::Reverse]);
        let fixed = ProbabilityMap::from_target(&target, 0.1);
        let produced = fixed.probability_map(&IoSpec::default());
        assert_eq!(produced, fixed);
    }

    #[test]
    fn boxed_guidance_delegates() {
        let boxed: Box<dyn GuidanceModel> = Box::new(UniformGuidance);
        let map = boxed.probability_map(&IoSpec::default());
        assert_eq!(map, ProbabilityMap::uniform());
    }
}
