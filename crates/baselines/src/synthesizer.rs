//! The common synthesizer interface shared by NetSyn and every baseline.
//!
//! All approaches receive the same inputs — an input-output specification,
//! the assumed target program length, a candidate budget and an RNG — and
//! report the same outputs, so the paper's "search space used" metric is
//! directly comparable across methods.

use netsyn_dsl::{DomainId, IoSpec, Program};
use netsyn_fitness::FitnessCache;
use netsyn_ga::SearchBudget;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A synthesis problem instance as seen by a synthesizer: the specification
/// and the assumed length of the target program. The target program itself is
/// never exposed to the synthesizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisProblem {
    /// Input-output examples describing the hidden target program.
    pub spec: IoSpec,
    /// Length of the program to synthesize.
    pub target_length: usize,
    /// The DSL domain whose operator vocabulary the synthesizer searches.
    pub domain: DomainId,
}

impl SynthesisProblem {
    /// Creates a problem instance over the list domain.
    #[must_use]
    pub fn new(spec: IoSpec, target_length: usize) -> Self {
        SynthesisProblem::with_domain(spec, target_length, DomainId::List)
    }

    /// Creates a problem instance over an explicit domain.
    #[must_use]
    pub fn with_domain(spec: IoSpec, target_length: usize, domain: DomainId) -> Self {
        SynthesisProblem {
            spec,
            target_length,
            domain,
        }
    }
}

/// Result of one synthesis attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisResult {
    /// The synthesized program, if the approach found one within budget.
    pub solution: Option<Program>,
    /// Number of candidate programs evaluated during the attempt.
    pub candidates_evaluated: usize,
    /// Number of GA generations used, for generation-based approaches.
    pub generations: Option<usize>,
}

impl SynthesisResult {
    /// A failed attempt that evaluated `candidates_evaluated` candidates.
    #[must_use]
    pub fn not_found(candidates_evaluated: usize) -> Self {
        SynthesisResult {
            solution: None,
            candidates_evaluated,
            generations: None,
        }
    }

    /// A successful attempt.
    #[must_use]
    pub fn found(solution: Program, candidates_evaluated: usize) -> Self {
        SynthesisResult {
            solution: Some(solution),
            candidates_evaluated,
            generations: None,
        }
    }

    /// Whether a solution was found.
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.solution.is_some()
    }
}

/// A program synthesizer: NetSyn, one of its ablations, or a baseline.
pub trait Synthesizer: Send + Sync {
    /// Short display name used in reports (e.g. `"DeepCoder"`, `"NetSyn_CF"`).
    fn name(&self) -> &str;

    /// Attempts to synthesize a program satisfying `problem.spec`, drawing
    /// every candidate evaluation from `budget`.
    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        budget: &mut SearchBudget,
        rng: &mut dyn RngCore,
    ) -> SynthesisResult;

    /// [`Synthesizer::synthesize`] with a shared, spec-keyed
    /// [`FitnessCache`] that survives across attempts.
    ///
    /// The evaluation harness runs every task `K` times and passes the same
    /// cache to every repetition; approaches whose candidate scoring is a
    /// pure function of `(candidate, spec)` (the GA-based synthesizers)
    /// reuse scores across those runs. The default implementation ignores
    /// the cache, which is always correct.
    fn synthesize_cached(
        &self,
        problem: &SynthesisProblem,
        budget: &mut SearchBudget,
        rng: &mut dyn RngCore,
        _cache: &FitnessCache,
    ) -> SynthesisResult {
        self.synthesize(problem, budget, rng)
    }
}

/// Blanket implementation for boxed synthesizers.
impl<S: Synthesizer + ?Sized> Synthesizer for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        budget: &mut SearchBudget,
        rng: &mut dyn RngCore,
    ) -> SynthesisResult {
        (**self).synthesize(problem, budget, rng)
    }

    fn synthesize_cached(
        &self,
        problem: &SynthesisProblem,
        budget: &mut SearchBudget,
        rng: &mut dyn RngCore,
        cache: &FitnessCache,
    ) -> SynthesisResult {
        (**self).synthesize_cached(problem, budget, rng, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::Function;

    struct Trivial;

    impl Synthesizer for Trivial {
        fn name(&self) -> &str {
            "trivial"
        }

        fn synthesize(
            &self,
            _problem: &SynthesisProblem,
            budget: &mut SearchBudget,
            _rng: &mut dyn RngCore,
        ) -> SynthesisResult {
            budget.try_consume();
            SynthesisResult::found(Program::new(vec![Function::Sort]), 1)
        }
    }

    #[test]
    fn trait_is_object_safe_and_boxable() {
        let synthesizer: Box<dyn Synthesizer> = Box::new(Trivial);
        let problem = SynthesisProblem::new(IoSpec::default(), 1);
        let mut budget = SearchBudget::new(10);
        let mut rng = rand::thread_rng();
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        assert!(result.is_success());
        assert_eq!(result.candidates_evaluated, 1);
        assert_eq!(synthesizer.name(), "trivial");
        assert_eq!(budget.evaluated(), 1);
    }

    #[test]
    fn result_constructors() {
        let failed = SynthesisResult::not_found(42);
        assert!(!failed.is_success());
        assert_eq!(failed.candidates_evaluated, 42);
        assert_eq!(failed.generations, None);
        let found = SynthesisResult::found(Program::new(vec![Function::Head]), 7);
        assert!(found.is_success());
    }

    #[test]
    fn serde_round_trip() {
        let result = SynthesisResult::found(Program::new(vec![Function::Head]), 7);
        let json = serde_json::to_string(&result).unwrap();
        let back: SynthesisResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, result);
    }
}
