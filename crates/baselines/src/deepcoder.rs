//! DeepCoder-style baseline: probability-guided enumerative search.
//!
//! DeepCoder (Balog et al., ICLR 2017) predicts which DSL functions are
//! likely to appear in the target program and then runs a classical
//! enumerative search restricted to the most likely functions, growing the
//! active set when the search fails ("sort and add"). This re-implementation
//! runs on the NetSyn DSL and draws every enumerated candidate from the
//! shared [`SearchBudget`], so its search-space usage is directly comparable
//! to NetSyn's.

use crate::guidance::GuidanceModel;
use crate::synthesizer::{SynthesisProblem, SynthesisResult, Synthesizer};
use netsyn_dsl::{Function, IoSpec, Program};
use netsyn_ga::SearchBudget;
use rand::RngCore;

/// DeepCoder-style synthesizer.
pub struct DeepCoder<G> {
    guidance: G,
    /// Size of the initial active function set.
    initial_active: usize,
}

impl<G: GuidanceModel> DeepCoder<G> {
    /// Creates a DeepCoder baseline with the given guidance model.
    #[must_use]
    pub fn new(guidance: G) -> Self {
        DeepCoder {
            guidance,
            initial_active: 8,
        }
    }

    /// Overrides the size of the initial active function set. Values larger
    /// than the problem domain's vocabulary are clamped at synthesis time.
    #[must_use]
    pub fn with_initial_active(mut self, initial_active: usize) -> Self {
        self.initial_active = initial_active.max(1);
        self
    }

    /// Depth-first enumeration of all programs of length `length` over
    /// `active`, optionally requiring the presence of `required` (the
    /// function added in the current sort-and-add round, to avoid re-counting
    /// programs already enumerated in earlier rounds).
    fn enumerate(
        active: &[Function],
        required: Option<Function>,
        length: usize,
        spec: &IoSpec,
        budget: &mut SearchBudget,
        evaluated: &mut usize,
    ) -> Option<Program> {
        let mut prefix = Vec::with_capacity(length);
        Self::enumerate_recursive(
            active,
            required,
            length,
            spec,
            budget,
            evaluated,
            &mut prefix,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_recursive(
        active: &[Function],
        required: Option<Function>,
        length: usize,
        spec: &IoSpec,
        budget: &mut SearchBudget,
        evaluated: &mut usize,
        prefix: &mut Vec<Function>,
    ) -> Option<Program> {
        if prefix.len() == length {
            if let Some(required) = required {
                if !prefix.contains(&required) {
                    return None;
                }
            }
            if !budget.try_consume() {
                return None;
            }
            *evaluated += 1;
            let candidate = Program::new(prefix.clone());
            if spec.is_satisfied_by(&candidate) {
                return Some(candidate);
            }
            return None;
        }
        // Prune: if the required function cannot fit in the remaining slots.
        if let Some(required) = required {
            let remaining = length - prefix.len();
            if !prefix.contains(&required) && remaining == 0 {
                return None;
            }
        }
        for &function in active {
            prefix.push(function);
            let result = Self::enumerate_recursive(
                active, required, length, spec, budget, evaluated, prefix,
            );
            prefix.pop();
            if result.is_some() || budget.is_exhausted() {
                return result;
            }
        }
        None
    }
}

impl<G: GuidanceModel> Synthesizer for DeepCoder<G> {
    fn name(&self) -> &str {
        "DeepCoder"
    }

    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        budget: &mut SearchBudget,
        _rng: &mut dyn RngCore,
    ) -> SynthesisResult {
        let map = self.guidance.probability_map(&problem.spec);
        let order = map.top_k(map.as_slice().len());
        let mut evaluated = 0usize;
        let mut active_size = self.initial_active.min(order.len()).max(1);
        let mut first_round = true;
        while active_size <= order.len() {
            let active = &order[..active_size];
            // In later rounds only enumerate programs containing the newly
            // added function; everything else was already tried.
            let required = if first_round {
                None
            } else {
                Some(order[active_size - 1])
            };
            if let Some(solution) = Self::enumerate(
                active,
                required,
                problem.target_length,
                &problem.spec,
                budget,
                &mut evaluated,
            ) {
                return SynthesisResult::found(solution, evaluated);
            }
            if budget.is_exhausted() {
                break;
            }
            active_size += 1;
            first_round = false;
        }
        SynthesisResult::not_found(evaluated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guidance::UniformGuidance;
    use netsyn_dsl::{IntPredicate, MapOp, Value};
    use netsyn_fitness::ProbabilityMap;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, -5, 7, 2])],
                vec![Value::List(vec![4, 4, -1, 0, 9])],
            ],
        )
    }

    #[test]
    fn finds_target_with_well_informed_guidance() {
        let map = ProbabilityMap::from_target(&target(), 0.01);
        let synthesizer = DeepCoder::new(map).with_initial_active(5);
        let problem = SynthesisProblem::new(spec(), 3);
        let mut budget = SearchBudget::new(50_000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        assert!(result.is_success());
        assert!(spec().is_satisfied_by(&result.solution.unwrap()));
        // With only the target's functions active, the search is tiny.
        assert!(result.candidates_evaluated <= 5usize.pow(3));
        assert_eq!(result.candidates_evaluated, budget.evaluated());
    }

    #[test]
    fn poor_guidance_needs_a_larger_search() {
        // Uniform guidance gives an arbitrary function ordering; the target's
        // functions may only enter the active set late.
        let uninformed = DeepCoder::new(UniformGuidance).with_initial_active(5);
        let informed =
            DeepCoder::new(ProbabilityMap::from_target(&target(), 0.01)).with_initial_active(5);
        let problem = SynthesisProblem::new(spec(), 3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut budget_a = SearchBudget::new(400_000);
        let informed_result = informed.synthesize(&problem, &mut budget_a, &mut rng);
        let mut budget_b = SearchBudget::new(400_000);
        let uninformed_result = uninformed.synthesize(&problem, &mut budget_b, &mut rng);
        assert!(informed_result.is_success());
        if let Some(solution) = &uninformed_result.solution {
            assert!(spec().is_satisfied_by(solution));
            assert!(
                uninformed_result.candidates_evaluated >= informed_result.candidates_evaluated,
                "informed search should be no slower"
            );
        }
    }

    #[test]
    fn respects_the_budget() {
        let synthesizer = DeepCoder::new(UniformGuidance).with_initial_active(10);
        let problem = SynthesisProblem::new(spec(), 5);
        let mut budget = SearchBudget::new(500);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        assert!(result.candidates_evaluated <= 500);
        assert!(budget.is_exhausted() || result.is_success());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(DeepCoder::new(UniformGuidance).name(), "DeepCoder");
    }
}
