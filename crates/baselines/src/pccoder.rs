//! PCCoder-style baseline: stepwise beam search over partial programs.
//!
//! PCCoder (Zohar & Wolf, NeurIPS 2018) extends a partial program one
//! statement at a time, ranking extensions with a learned model of the
//! current program state, and widens its beam when the search fails
//! (complete anytime beam search, CAB). The search engine itself lives in
//! [`netsyn_ga::BeamSearch`] so the portfolio orchestrator can race the
//! same state machine against the GA islands; this baseline wraps it with
//! a guidance model and drives it to completion. Extensions are scored by
//! combining the guidance model's per-function probability with a state
//! heuristic that measures how similar the partial program's current
//! outputs are to the expected outputs. PCCoder's garbage collection of
//! dead variables is implicit here because the DSL has no named variables
//! at all.

use crate::guidance::GuidanceModel;
use crate::synthesizer::{SynthesisProblem, SynthesisResult, Synthesizer};
use netsyn_ga::{BeamConfig, BeamSearch, SearchBudget};
use rand::RngCore;

/// PCCoder-style synthesizer.
pub struct PcCoder<G> {
    guidance: G,
    initial_beam_width: usize,
    max_beam_width: usize,
}

impl<G: GuidanceModel> PcCoder<G> {
    /// Creates a PCCoder baseline with the given guidance model.
    #[must_use]
    pub fn new(guidance: G) -> Self {
        PcCoder {
            guidance,
            initial_beam_width: 8,
            max_beam_width: 4096,
        }
    }

    /// Overrides the initial beam width.
    #[must_use]
    pub fn with_initial_beam_width(mut self, width: usize) -> Self {
        self.initial_beam_width = width.max(1);
        self
    }

    /// Overrides the maximum beam width reached by iterative widening.
    #[must_use]
    pub fn with_max_beam_width(mut self, width: usize) -> Self {
        self.max_beam_width = width.max(1);
        self
    }
}

impl<G: GuidanceModel> Synthesizer for PcCoder<G> {
    fn name(&self) -> &str {
        "PCCoder"
    }

    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        budget: &mut SearchBudget,
        _rng: &mut dyn RngCore,
    ) -> SynthesisResult {
        let map = self.guidance.probability_map(&problem.spec);
        let mut search = BeamSearch::new(
            &problem.spec,
            problem.domain,
            problem.target_length,
            map,
            BeamConfig {
                initial_width: self.initial_beam_width,
                max_width: self.max_beam_width,
            },
        );
        match search.run(budget, None) {
            Some(solution) => SynthesisResult::found(solution, search.evaluated()),
            None => SynthesisResult::not_found(search.evaluated()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guidance::UniformGuidance;
    use netsyn_dsl::{Function, IntPredicate, IoSpec, MapOp, Program, Value};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, -5, 7, 2])],
                vec![Value::List(vec![4, 4, -1, 0, 9])],
            ],
        )
    }

    #[test]
    fn finds_target_with_informed_guidance() {
        let map = netsyn_fitness::ProbabilityMap::from_target(&target(), 0.01);
        let synthesizer = PcCoder::new(map).with_initial_beam_width(8);
        let problem = SynthesisProblem::new(spec(), 3);
        let mut budget = SearchBudget::new(200_000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        assert!(result.is_success());
        assert!(spec().is_satisfied_by(&result.solution.unwrap()));
        assert_eq!(result.candidates_evaluated, budget.evaluated());
    }

    #[test]
    fn finds_target_even_with_uniform_guidance_thanks_to_state_heuristic() {
        let synthesizer = PcCoder::new(UniformGuidance)
            .with_initial_beam_width(16)
            .with_max_beam_width(256);
        let problem = SynthesisProblem::new(spec(), 3);
        let mut budget = SearchBudget::new(300_000);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        // The state heuristic alone is not guaranteed to find the target, but
        // the result must always be consistent: any reported solution
        // satisfies the spec and the candidate count matches the budget.
        if let Some(solution) = &result.solution {
            assert!(spec().is_satisfied_by(solution));
        }
        assert_eq!(result.candidates_evaluated, budget.evaluated());
    }

    #[test]
    fn respects_the_budget() {
        let synthesizer = PcCoder::new(UniformGuidance);
        let problem = SynthesisProblem::new(spec(), 5);
        let mut budget = SearchBudget::new(300);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        assert!(result.candidates_evaluated <= 300);
        assert!(budget.is_exhausted() || result.is_success());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(PcCoder::new(UniformGuidance).name(), "PCCoder");
    }
}
