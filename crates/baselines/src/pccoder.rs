//! PCCoder-style baseline: stepwise beam search over partial programs.
//!
//! PCCoder (Zohar & Wolf, NeurIPS 2018) extends a partial program one
//! statement at a time, ranking extensions with a learned model of the
//! current program state, and widens its beam when the search fails
//! (complete anytime beam search, CAB). This re-implementation keeps the
//! search structure — stepwise extension, state-aware scoring, iterative beam
//! widening — on the NetSyn DSL. Extensions are scored by combining the
//! guidance model's per-function probability with a state heuristic that
//! measures how similar the partial program's current outputs are to the
//! expected outputs. PCCoder's garbage collection of dead variables is
//! implicit here because the DSL has no named variables at all.

use crate::guidance::GuidanceModel;
use crate::synthesizer::{SynthesisProblem, SynthesisResult, Synthesizer};
use netsyn_dsl::{IoSpec, Program};
use netsyn_fitness::metrics::output_similarity;
use netsyn_fitness::ProbabilityMap;
use netsyn_ga::SearchBudget;
use rand::RngCore;

/// PCCoder-style synthesizer.
pub struct PcCoder<G> {
    guidance: G,
    initial_beam_width: usize,
    max_beam_width: usize,
}

impl<G: GuidanceModel> PcCoder<G> {
    /// Creates a PCCoder baseline with the given guidance model.
    #[must_use]
    pub fn new(guidance: G) -> Self {
        PcCoder {
            guidance,
            initial_beam_width: 8,
            max_beam_width: 4096,
        }
    }

    /// Overrides the initial beam width.
    #[must_use]
    pub fn with_initial_beam_width(mut self, width: usize) -> Self {
        self.initial_beam_width = width.max(1);
        self
    }

    /// Overrides the maximum beam width reached by iterative widening.
    #[must_use]
    pub fn with_max_beam_width(mut self, width: usize) -> Self {
        self.max_beam_width = width.max(1);
        self
    }

    /// Scores a partial program: guidance mass of its functions plus the
    /// average similarity between its current outputs and the expected
    /// outputs (the "state" heuristic).
    fn score_partial(partial: &Program, spec: &IoSpec, map: &ProbabilityMap) -> f64 {
        let guidance_score = map.score(partial);
        let state_score: f64 = spec
            .iter()
            .map(|example| {
                partial
                    .output(&example.inputs)
                    .map(|out| output_similarity(&out, &example.output))
                    .unwrap_or(0.0)
            })
            .sum::<f64>()
            / spec.len().max(1) as f64;
        guidance_score + state_score
    }

    fn beam_search(
        &self,
        problem: &SynthesisProblem,
        map: &ProbabilityMap,
        beam_width: usize,
        budget: &mut SearchBudget,
        evaluated: &mut usize,
    ) -> Option<Program> {
        let mut beam: Vec<(Program, f64)> = vec![(Program::default(), 0.0)];
        for depth in 0..problem.target_length {
            let mut extensions: Vec<(Program, f64)> = Vec::new();
            for (partial, _) in &beam {
                for &function in problem.domain.vocab() {
                    let mut functions = partial.functions().to_vec();
                    functions.push(function);
                    let extended = Program::new(functions);
                    if !budget.try_consume() {
                        return None;
                    }
                    *evaluated += 1;
                    if depth + 1 == problem.target_length && problem.spec.is_satisfied_by(&extended)
                    {
                        return Some(extended);
                    }
                    let score = Self::score_partial(&extended, &problem.spec, map);
                    extensions.push((extended, score));
                }
            }
            // total_cmp: a NaN guidance score takes a deterministic
            // extreme position in the beam (positive NaN first, negative
            // last) instead of scrambling the ranking run to run.
            extensions.sort_by(|a, b| b.1.total_cmp(&a.1));
            extensions.truncate(beam_width);
            if extensions.is_empty() {
                return None;
            }
            beam = extensions;
        }
        None
    }
}

impl<G: GuidanceModel> Synthesizer for PcCoder<G> {
    fn name(&self) -> &str {
        "PCCoder"
    }

    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        budget: &mut SearchBudget,
        _rng: &mut dyn RngCore,
    ) -> SynthesisResult {
        let map = self.guidance.probability_map(&problem.spec);
        let mut evaluated = 0usize;
        let mut beam_width = self.initial_beam_width;
        // Complete anytime beam search: retry with a doubled beam width until
        // the budget runs out or the beam cannot grow further.
        loop {
            if let Some(solution) =
                self.beam_search(problem, &map, beam_width, budget, &mut evaluated)
            {
                return SynthesisResult::found(solution, evaluated);
            }
            if budget.is_exhausted() || beam_width >= self.max_beam_width {
                return SynthesisResult::not_found(evaluated);
            }
            beam_width = (beam_width * 2).min(self.max_beam_width);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guidance::UniformGuidance;
    use netsyn_dsl::{Function, IntPredicate, MapOp, Value};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, -5, 7, 2])],
                vec![Value::List(vec![4, 4, -1, 0, 9])],
            ],
        )
    }

    #[test]
    fn finds_target_with_informed_guidance() {
        let map = netsyn_fitness::ProbabilityMap::from_target(&target(), 0.01);
        let synthesizer = PcCoder::new(map).with_initial_beam_width(8);
        let problem = SynthesisProblem::new(spec(), 3);
        let mut budget = SearchBudget::new(200_000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        assert!(result.is_success());
        assert!(spec().is_satisfied_by(&result.solution.unwrap()));
        assert_eq!(result.candidates_evaluated, budget.evaluated());
    }

    #[test]
    fn finds_target_even_with_uniform_guidance_thanks_to_state_heuristic() {
        let synthesizer = PcCoder::new(UniformGuidance)
            .with_initial_beam_width(16)
            .with_max_beam_width(256);
        let problem = SynthesisProblem::new(spec(), 3);
        let mut budget = SearchBudget::new(300_000);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        // The state heuristic alone is not guaranteed to find the target, but
        // the result must always be consistent: any reported solution
        // satisfies the spec and the candidate count matches the budget.
        if let Some(solution) = &result.solution {
            assert!(spec().is_satisfied_by(solution));
        }
        assert_eq!(result.candidates_evaluated, budget.evaluated());
    }

    #[test]
    fn respects_the_budget() {
        let synthesizer = PcCoder::new(UniformGuidance);
        let problem = SynthesisProblem::new(spec(), 5);
        let mut budget = SearchBudget::new(300);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        assert!(result.candidates_evaluated <= 300);
        assert!(budget.is_exhausted() || result.is_success());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(PcCoder::new(UniformGuidance).name(), "PCCoder");
    }
}
