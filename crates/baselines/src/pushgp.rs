//! PushGP-style baseline: classical genetic programming with a hand-crafted
//! fitness function.
//!
//! The paper compares against PushGP (Perkis, 1994), a stack-based genetic
//! programming system. The behaviourally relevant characteristics for the
//! paper's comparison are (a) a standard GP loop — tournament selection,
//! crossover, mutation — and (b) a *hand-crafted* output-distance fitness
//! rather than a learned one. This re-implementation keeps both on the
//! NetSyn DSL (which is itself implicitly stack-like: every statement
//! consumes the most recent value of the right type), without NetSyn's
//! dead-code elimination, neighborhood search or probability-guided
//! mutation.

use crate::synthesizer::{SynthesisProblem, SynthesisResult, Synthesizer};
use netsyn_dsl::{DomainId, Program};
use netsyn_fitness::{EditDistanceFitness, FitnessFunction};
use netsyn_ga::SearchBudget;
use rand::{Rng, RngCore};

/// PushGP-style genetic-programming baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct PushGp {
    population_size: usize,
    tournament_size: usize,
    crossover_rate: f64,
    mutation_rate: f64,
    max_generations: usize,
}

impl PushGp {
    /// Creates the baseline with its default hyper-parameters (population of
    /// 100, tournament size 5, 70% crossover, 25% mutation).
    #[must_use]
    pub fn new() -> Self {
        PushGp {
            population_size: 100,
            tournament_size: 5,
            crossover_rate: 0.7,
            mutation_rate: 0.25,
            max_generations: 30_000,
        }
    }

    /// Overrides the population size.
    #[must_use]
    pub fn with_population_size(mut self, size: usize) -> Self {
        self.population_size = size.max(2);
        self
    }

    /// Overrides the generation cap.
    #[must_use]
    pub fn with_max_generations(mut self, generations: usize) -> Self {
        self.max_generations = generations.max(1);
        self
    }

    fn random_program(domain: DomainId, length: usize, rng: &mut dyn RngCore) -> Program {
        let vocab = domain.vocab();
        (0..length)
            .map(|_| vocab[rng.gen_range(0..vocab.len())])
            .collect()
    }

    fn tournament_select<'a>(
        &self,
        population: &'a [(Program, f64)],
        rng: &mut dyn RngCore,
    ) -> &'a Program {
        let mut best: Option<&(Program, f64)> = None;
        for _ in 0..self.tournament_size {
            let candidate = &population[rng.gen_range(0..population.len())];
            if best.is_none_or(|b| candidate.1 > b.1) {
                best = Some(candidate);
            }
        }
        &best.expect("tournament over a non-empty population").0
    }
}

impl Default for PushGp {
    fn default() -> Self {
        PushGp::new()
    }
}

impl Synthesizer for PushGp {
    fn name(&self) -> &str {
        "PushGP"
    }

    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        budget: &mut SearchBudget,
        rng: &mut dyn RngCore,
    ) -> SynthesisResult {
        let fitness = EditDistanceFitness::new();
        let mut evaluated = 0usize;
        // Initial population.
        let mut population: Vec<(Program, f64)> = Vec::with_capacity(self.population_size);
        for _ in 0..self.population_size {
            if !budget.try_consume() {
                return SynthesisResult::not_found(evaluated);
            }
            evaluated += 1;
            let program = Self::random_program(problem.domain, problem.target_length, rng);
            if problem.spec.is_satisfied_by(&program) {
                return SynthesisResult::found(program, evaluated);
            }
            let score = fitness.score(&program, &problem.spec);
            population.push((program, score));
        }

        for generation in 1..=self.max_generations {
            let mut next: Vec<(Program, f64)> = Vec::with_capacity(self.population_size);
            while next.len() < self.population_size {
                let draw: f64 = rng.gen();
                let offspring = if draw < self.crossover_rate {
                    let a = self.tournament_select(&population, rng).clone();
                    let b = self.tournament_select(&population, rng).clone();
                    netsyn_ga::crossover::single_point(&a, &b, rng)
                } else if draw < self.crossover_rate + self.mutation_rate {
                    let parent = self.tournament_select(&population, rng).clone();
                    let position = rng.gen_range(0..parent.len());
                    let vocab = problem.domain.vocab();
                    let replacement = vocab[rng.gen_range(0..vocab.len())];
                    parent.with_replaced(position, replacement)
                } else {
                    // Straight reproduction: keep the selected parent without
                    // counting it as a new candidate.
                    let parent = self.tournament_select(&population, rng).clone();
                    let score = fitness.score(&parent, &problem.spec);
                    next.push((parent, score));
                    continue;
                };
                if !budget.try_consume() {
                    return SynthesisResult::not_found(evaluated);
                }
                evaluated += 1;
                if problem.spec.is_satisfied_by(&offspring) {
                    let mut result = SynthesisResult::found(offspring, evaluated);
                    result.generations = Some(generation);
                    return result;
                }
                let score = fitness.score(&offspring, &problem.spec);
                next.push((offspring, score));
            }
            population = next;
        }
        SynthesisResult::not_found(evaluated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{Function, IntPredicate, IoSpec, MapOp, Value};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn spec_for(target: &Program) -> IoSpec {
        IoSpec::from_program(
            target,
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, -5, 7, 2])],
                vec![Value::List(vec![4, 4, -1, 0, 9])],
            ],
        )
    }

    #[test]
    fn finds_a_short_target() {
        // A length-2 target is well within reach of plain GP with an
        // output-distance fitness.
        let target = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Sort,
        ]);
        let spec = spec_for(&target);
        let synthesizer = PushGp::new()
            .with_population_size(50)
            .with_max_generations(300);
        let problem = SynthesisProblem::new(spec.clone(), 2);
        let mut budget = SearchBudget::new(200_000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        assert!(result.is_success());
        assert!(spec.is_satisfied_by(&result.solution.unwrap()));
    }

    #[test]
    fn respects_the_budget() {
        let target = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul3),
            Function::Scanl1(netsyn_dsl::BinOp::Add),
            Function::Reverse,
            Function::Sort,
        ]);
        let spec = spec_for(&target);
        let synthesizer = PushGp::new().with_population_size(20);
        let problem = SynthesisProblem::new(spec, 5);
        let mut budget = SearchBudget::new(500);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        assert!(result.candidates_evaluated <= 500);
        assert!(budget.is_exhausted() || result.is_success());
    }

    #[test]
    fn candidate_count_matches_budget_usage() {
        let target = Program::new(vec![Function::Sort, Function::Reverse]);
        let spec = spec_for(&target);
        let synthesizer = PushGp::new()
            .with_population_size(10)
            .with_max_generations(20);
        let problem = SynthesisProblem::new(spec, 2);
        let mut budget = SearchBudget::new(100_000);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let before = budget.evaluated();
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        assert_eq!(result.candidates_evaluated, budget.evaluated() - before);
    }

    #[test]
    fn default_and_name() {
        assert_eq!(PushGp::default(), PushGp::new());
        assert_eq!(PushGp::new().name(), "PushGP");
    }
}
