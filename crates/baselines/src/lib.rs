//! # netsyn-baselines
//!
//! Baseline synthesizers the NetSyn paper compares against, re-implemented on
//! the NetSyn DSL so that the paper's "search space used" metric (candidate
//! programs evaluated against a shared budget) is directly comparable:
//!
//! * [`DeepCoder`] — probability-guided enumerative search ("sort and add");
//! * [`PcCoder`] — stepwise beam search over partial programs with iterative
//!   beam widening;
//! * [`RobustFill`] — autoregressive sampling of whole programs from a
//!   conditional token distribution;
//! * [`PushGp`] — classical genetic programming with a hand-crafted
//!   output-distance fitness.
//!
//! All baselines implement the common [`Synthesizer`] trait; the neural ones
//! take a [`GuidanceModel`] (usually the same trained FP network NetSyn
//! uses) for their per-function probability estimates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod deepcoder;
mod guidance;
mod pccoder;
mod pushgp;
mod robustfill;
mod synthesizer;

pub use deepcoder::DeepCoder;
pub use guidance::{GuidanceModel, UniformGuidance};
pub use pccoder::PcCoder;
pub use pushgp::PushGp;
pub use robustfill::RobustFill;
pub use synthesizer::{SynthesisProblem, SynthesisResult, Synthesizer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeepCoder<UniformGuidance>>();
        assert_send_sync::<PcCoder<UniformGuidance>>();
        assert_send_sync::<RobustFill<UniformGuidance>>();
        assert_send_sync::<PushGp>();
        assert_send_sync::<SynthesisProblem>();
        assert_send_sync::<Box<dyn Synthesizer>>();
        assert_send_sync::<Box<dyn GuidanceModel>>();
    }
}
